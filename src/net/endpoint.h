#ifndef TXREP_NET_ENDPOINT_H_
#define TXREP_NET_ENDPOINT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/mutex.h"
#include "common/blocking_queue.h"
#include "common/result.h"
#include "common/status.h"
#include "mw/broker.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace txrep::net {

/// NetEndpoint knobs.
struct EndpointOptions {
  /// Broker topic this endpoint fans out (must match the publisher's).
  std::string topic = "txrep.log";

  /// Encoded batches retained for resume-from-LSN replay. When the window
  /// rolls past a batch, its LSNs can no longer be served: a subscriber
  /// resuming below the floor is rejected and must bootstrap instead.
  size_t retention_capacity = 1024;

  /// Bound on each session's pending-batch queue. A full queue blocks the
  /// broker's delivery thread — the server-side link of the backpressure
  /// chain (DESIGN.md §13).
  size_t session_queue_capacity = 64;

  /// Accept-loop poll interval; bounds Stop() latency.
  int64_t accept_timeout_micros = 50'000;

  /// Per-session transport queues.
  TransportOptions transport;
};

/// The broker's wire boundary: attaches to a mw::Broker as a fanout and
/// streams every published log batch to remote subscribers as checksummed
/// frames, with per-session credit-based flow control and a bounded
/// retention window for resume-after-disconnect (DESIGN.md §13).
///
/// One session = one accepted connection: a handshake (kSubscribe →
/// kSubscribeAck carrying the catalog snapshot), then a credit-gated kBatch
/// stream. Sessions replay retained batches past the subscriber's resume
/// LSN first, then follow the live feed; a batch straddling the resume point
/// is sent whole and deduped on the subscriber.
///
/// Lifetime: construct after the broker, destroy before it (the fanout stays
/// attached for the broker's lifetime). Stop() (or the destructor) ends all
/// sessions with an orderly kBye.
class NetEndpoint {
 public:
  /// Attaches to `broker` (not owned, must outlive this endpoint) on
  /// `options.topic`. `metrics` (optional, same lifetime rule) receives
  /// session/retention gauges and per-role transport counters.
  NetEndpoint(mw::Broker* broker, EndpointOptions options = {},
              obs::MetricsRegistry* metrics = nullptr);

  ~NetEndpoint();

  NetEndpoint(const NetEndpoint&) = delete;
  NetEndpoint& operator=(const NetEndpoint&) = delete;

  /// Catalog snapshot (codec::EncodeCatalog bytes) handed to every
  /// subscriber in the kSubscribeAck, so remote replica processes can build
  /// their QueryTranslator. Set before serving.
  void SetCatalog(std::string encoded_catalog);

  /// Raises the retention floor: subscribers resuming below `lsn` are
  /// rejected with "bootstrap required" even though no batch was evicted
  /// yet. An endpoint attached to a primary that already shipped LSNs
  /// before serving sets this to the publisher's position — those LSNs
  /// never reached retention, so serving a resume below them would hand the
  /// subscriber a silent gap. Never lowers the floor.
  void SetRetentionFloor(uint64_t lsn);

  /// Starts accepting TCP subscribers on 127.0.0.1:`port` (0 = ephemeral,
  /// see port()).
  Status ListenAndServe(uint16_t port);

  /// Port the listener is bound to (0 before ListenAndServe).
  uint16_t port() const;

  /// Serves one session on an existing connected socket (the socketpair
  /// path: tests, benches, the schedule explorer's wire mode).
  Status ServeSocket(Socket socket);

  /// Stops the accept loop and ends every session with an orderly kBye.
  /// Idempotent. Retention stays intact (a restarted endpoint could resume).
  void Stop();

  /// Test hook: hard-aborts every live session's transport — subscribers
  /// see a reset mid-stream and must reconnect. The endpoint keeps serving.
  void DropSessions();

  size_t live_sessions() const;
  uint64_t last_published_lsn() const;

  /// Lowest resume LSN still servable from retention.
  uint64_t retained_floor_lsn() const;

 private:
  /// One retained (and possibly in-flight) encoded batch; shared between the
  /// retention window and session queues, so eviction never copies.
  struct RetainedBatch {
    uint64_t min_lsn = 0;
    uint64_t max_lsn = 0;
    uint64_t txn_count = 0;
    int64_t publish_micros = 0;
    std::string payload;  // EncodeLogBatch bytes.
  };
  using BatchRef = std::shared_ptr<const RetainedBatch>;

  struct Session {
    explicit Session(size_t queue_capacity) : queue(queue_capacity) {}

    // analyze: lock-free(owned by the session thread; other threads only call the thread-safe Abort/Send)
    std::unique_ptr<FrameTransport> transport;
    // analyze: lock-free(BlockingQueue is internally synchronized)
    BlockingQueue<BatchRef> queue;

    check::Mutex mu{"net.session.mu"};
    check::CondVar cv{&mu};
    uint64_t credits TXREP_GUARDED_BY(mu) = 0;
    bool done TXREP_GUARDED_BY(mu) = false;
  };

  /// Broker fanout: stamps the batch's LSN range, appends it to retention
  /// and feeds every live session queue (blocking on full ones).
  void PublishMessage(const mw::Message& message);

  void AcceptLoop();

  /// Handshake + batch sender for one connection; runs on a session thread.
  void RunSession(std::unique_ptr<FrameTransport> transport);

  /// Drains control frames (kCredit, kBye) of one session.
  void ControlLoop(const std::shared_ptr<Session>& session);

  void RemoveSession(const Session* session);
  void FinishHandshake(const Session* session);

  const EndpointOptions options_;
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  obs::MetricsRegistry* metrics_;  // Not owned; may be null.

  mutable check::Mutex mu_{"net.endpoint.mu"};
  std::string catalog_ TXREP_GUARDED_BY(mu_);
  std::deque<BatchRef> retained_ TXREP_GUARDED_BY(mu_);
  /// Highest LSN evicted from retention; resumes below this are rejected.
  uint64_t floor_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  uint64_t last_published_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  std::vector<std::shared_ptr<Session>> sessions_ TXREP_GUARDED_BY(mu_);
  /// Sessions still in the handshake (not fed by PublishMessage yet); Stop
  /// and DropSessions abort these so a stalled handshake cannot hang a join.
  std::vector<std::shared_ptr<Session>> handshaking_ TXREP_GUARDED_BY(mu_);
  std::vector<std::thread> session_threads_ TXREP_GUARDED_BY(mu_);
  bool stopping_ TXREP_GUARDED_BY(mu_) = false;

  std::atomic<bool> accepting_{false};
  // analyze: lock-free(fd owned here; accept thread polls it, mutated only after joins)
  Socket listener_;
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread accept_thread_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_sessions_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_retained_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_credit_stalls_ = nullptr;
};

}  // namespace txrep::net

#endif  // TXREP_NET_ENDPOINT_H_
