#include "net/frame.h"

#include "codec/encoding.h"

namespace txrep::net {

namespace {

constexpr char kMagic0 = 'T';
constexpr char kMagic1 = 'R';

Status Corrupt(const std::string& what) {
  return Status::Corruption("frame: " + what);
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kSubscribe) &&
         type <= static_cast<uint8_t>(FrameType::kError);
}

Status ExpectType(const Frame& frame, FrameType want) {
  if (frame.type == want) return Status::OK();
  return Status::InvalidArgument(
      std::string("expected ") + FrameTypeName(want) + " frame, got " +
      FrameTypeName(frame.type));
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubscribe: return "SUBSCRIBE";
    case FrameType::kSubscribeAck: return "SUBSCRIBE_ACK";
    case FrameType::kBatch: return "BATCH";
    case FrameType::kCredit: return "CREDIT";
    case FrameType::kBye: return "BYE";
    case FrameType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

bool operator==(const Frame& a, const Frame& b) {
  return a.type == b.type && a.body == b.body;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.body.size() + kFrameChecksumBytes);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  codec::AppendFixed32(out, static_cast<uint32_t>(frame.body.size()));
  out.append(frame.body);
  codec::AppendFixed64(out, codec::Fnv1a(out));
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Drop the consumed prefix before growing: steady-state memory stays
  // proportional to one frame, not to the whole stream.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return std::optional<Frame>{};

  if (pending[0] != kMagic0 || pending[1] != kMagic1) {
    error_ = Corrupt("bad magic");
    return error_;
  }
  if (static_cast<uint8_t>(pending[2]) != kProtocolVersion) {
    error_ = Corrupt("protocol version mismatch");
    return error_;
  }
  const uint8_t type = static_cast<uint8_t>(pending[3]);
  if (!ValidFrameType(type)) {
    error_ = Corrupt("unknown frame type");
    return error_;
  }
  std::string_view length_view = pending.substr(4, 4);
  uint32_t body_len = 0;
  codec::GetFixed32(&length_view, &body_len);
  if (body_len > kMaxFrameBody) {
    error_ = Corrupt("frame body exceeds kMaxFrameBody");
    return error_;
  }
  const size_t total = kFrameHeaderBytes + body_len + kFrameChecksumBytes;
  if (pending.size() < total) return std::optional<Frame>{};

  const std::string_view checked = pending.substr(0, total - kFrameChecksumBytes);
  std::string_view checksum_view = pending.substr(total - kFrameChecksumBytes);
  uint64_t checksum = 0;
  codec::GetFixed64(&checksum_view, &checksum);
  if (checksum != codec::Fnv1a(checked)) {
    error_ = Corrupt("checksum mismatch");
    return error_;
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.body.assign(pending.data() + kFrameHeaderBytes, body_len);
  consumed_ += total;
  return std::optional<Frame>{std::move(frame)};
}

Frame MakeSubscribeFrame(const SubscribeRequest& request) {
  Frame frame;
  frame.type = FrameType::kSubscribe;
  codec::AppendVarint64(frame.body, request.protocol_version);
  codec::AppendLengthPrefixed(frame.body, request.topic);
  codec::AppendVarint64(frame.body, request.resume_after_lsn);
  codec::AppendVarint64(frame.body, request.initial_credits);
  return frame;
}

Frame MakeSubscribeAckFrame(const SubscribeAck& ack) {
  Frame frame;
  frame.type = FrameType::kSubscribeAck;
  codec::AppendVarint64(frame.body, ack.protocol_version);
  codec::AppendVarint64(frame.body, ack.retained_floor_lsn);
  codec::AppendVarint64(frame.body, ack.last_published_lsn);
  codec::AppendLengthPrefixed(frame.body, ack.catalog);
  return frame;
}

Frame MakeBatchFrame(const BatchPayload& payload) {
  Frame frame;
  frame.type = FrameType::kBatch;
  codec::AppendVarint64(frame.body, payload.min_lsn);
  codec::AppendVarint64(frame.body, payload.max_lsn);
  codec::AppendVarint64(frame.body, payload.txn_count);
  codec::AppendVarint64(frame.body,
                        codec::ZigZagEncode(payload.publish_micros));
  codec::AppendLengthPrefixed(frame.body, payload.batch_bytes);
  return frame;
}

Frame MakeCreditFrame(const CreditGrant& grant) {
  Frame frame;
  frame.type = FrameType::kCredit;
  codec::AppendVarint64(frame.body, grant.credits);
  return frame;
}

Frame MakeByeFrame(std::string_view reason) {
  Frame frame;
  frame.type = FrameType::kBye;
  codec::AppendLengthPrefixed(frame.body, reason);
  return frame;
}

Frame MakeErrorFrame(std::string_view reason) {
  Frame frame;
  frame.type = FrameType::kError;
  codec::AppendLengthPrefixed(frame.body, reason);
  return frame;
}

Result<SubscribeRequest> ParseSubscribe(const Frame& frame) {
  TXREP_RETURN_IF_ERROR(ExpectType(frame, FrameType::kSubscribe));
  std::string_view src = frame.body;
  SubscribeRequest request;
  std::string_view topic;
  if (!codec::GetVarint64(&src, &request.protocol_version) ||
      !codec::GetLengthPrefixed(&src, &topic) ||
      !codec::GetVarint64(&src, &request.resume_after_lsn) ||
      !codec::GetVarint64(&src, &request.initial_credits) || !src.empty()) {
    return Corrupt("malformed SUBSCRIBE body");
  }
  request.topic.assign(topic);
  return request;
}

Result<SubscribeAck> ParseSubscribeAck(const Frame& frame) {
  TXREP_RETURN_IF_ERROR(ExpectType(frame, FrameType::kSubscribeAck));
  std::string_view src = frame.body;
  SubscribeAck ack;
  std::string_view catalog;
  if (!codec::GetVarint64(&src, &ack.protocol_version) ||
      !codec::GetVarint64(&src, &ack.retained_floor_lsn) ||
      !codec::GetVarint64(&src, &ack.last_published_lsn) ||
      !codec::GetLengthPrefixed(&src, &catalog) || !src.empty()) {
    return Corrupt("malformed SUBSCRIBE_ACK body");
  }
  ack.catalog.assign(catalog);
  return ack;
}

Result<BatchPayload> ParseBatch(const Frame& frame) {
  TXREP_RETURN_IF_ERROR(ExpectType(frame, FrameType::kBatch));
  std::string_view src = frame.body;
  BatchPayload payload;
  uint64_t publish_zigzag = 0;
  std::string_view batch;
  if (!codec::GetVarint64(&src, &payload.min_lsn) ||
      !codec::GetVarint64(&src, &payload.max_lsn) ||
      !codec::GetVarint64(&src, &payload.txn_count) ||
      !codec::GetVarint64(&src, &publish_zigzag) ||
      !codec::GetLengthPrefixed(&src, &batch) || !src.empty()) {
    return Corrupt("malformed BATCH body");
  }
  if (payload.min_lsn > payload.max_lsn || payload.txn_count == 0) {
    return Corrupt("BATCH lsn range invalid");
  }
  payload.publish_micros = codec::ZigZagDecode(publish_zigzag);
  payload.batch_bytes.assign(batch);
  return payload;
}

Result<CreditGrant> ParseCredit(const Frame& frame) {
  TXREP_RETURN_IF_ERROR(ExpectType(frame, FrameType::kCredit));
  std::string_view src = frame.body;
  CreditGrant grant;
  if (!codec::GetVarint64(&src, &grant.credits) || !src.empty()) {
    return Corrupt("malformed CREDIT body");
  }
  return grant;
}

namespace {

Result<std::string> ParseReason(const Frame& frame, FrameType type,
                                const char* what) {
  TXREP_RETURN_IF_ERROR(ExpectType(frame, type));
  std::string_view src = frame.body;
  std::string_view reason;
  if (!codec::GetLengthPrefixed(&src, &reason) || !src.empty()) {
    return Corrupt(std::string("malformed ") + what + " body");
  }
  return std::string(reason);
}

}  // namespace

Result<std::string> ParseBye(const Frame& frame) {
  return ParseReason(frame, FrameType::kBye, "BYE");
}

Result<std::string> ParseError(const Frame& frame) {
  return ParseReason(frame, FrameType::kError, "ERROR");
}

}  // namespace txrep::net
