#ifndef TXREP_NET_TRANSPORT_H_
#define TXREP_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

#include "check/mutex.h"
#include "common/blocking_queue.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace txrep::net {

/// FrameTransport knobs.
struct TransportOptions {
  /// Bound on the outbound frame queue; a full queue blocks Send() — the
  /// local edge of the backpressure chain (DESIGN.md §13).
  size_t send_queue_capacity = 128;

  /// Bound on the inbound frame queue; a full queue parks the reader thread,
  /// which stops draining the kernel buffer, which stalls the remote writer.
  size_t recv_queue_capacity = 128;

  /// Poll timeout of the I/O threads; bounds Stop() latency, nothing else.
  int64_t poll_timeout_micros = 20'000;
};

/// Full-duplex framed connection over one Socket: a writer thread drains a
/// bounded send queue through non-blocking writes (poll on would-block), a
/// reader thread feeds a FrameDecoder and publishes complete frames to a
/// bounded receive queue. Everything above this class reasons in frames;
/// everything below (socket.h) reasons in bytes.
///
/// Shutdown semantics:
///  - Close(): stops accepting new Send()s, flushes frames already queued,
///    then tears the socket down. The orderly path.
///  - Abort(): immediate shutdown(SHUT_RDWR) — in-flight data is dropped and
///    the peer sees EOF/reset. The kill-and-reconnect test path.
/// After either, Receive() drains whatever arrived and then returns nullopt.
class FrameTransport {
 public:
  /// `metrics` (optional, must outlive the transport) receives frame/byte
  /// counters and queue-depth gauges, labeled {role="`role`"} — pass
  /// "server" / "client" so both ends of a socketpair stay distinguishable.
  FrameTransport(Socket socket, TransportOptions options = {},
                 obs::MetricsRegistry* metrics = nullptr,
                 const char* role = "client");

  ~FrameTransport();

  FrameTransport(const FrameTransport&) = delete;
  FrameTransport& operator=(const FrameTransport&) = delete;

  /// Enqueues one frame for sending; blocks while the send queue is full.
  /// False once the transport is closed/aborted (frame dropped).
  bool Send(Frame frame);

  /// Next received frame; blocks. nullopt once the stream ended (peer EOF,
  /// local Close/Abort, or transport error — see health()).
  std::optional<Frame> Receive();

  /// Non-blocking variant of Receive().
  std::optional<Frame> TryReceive();

  /// Orderly shutdown: no new sends, queued frames flushed, socket torn
  /// down. Idempotent, joins the I/O threads.
  void Close();

  /// Hard drop without flushing — simulates a network kill. Idempotent.
  void Abort();

  /// Sticky transport error: OK while healthy or after an orderly EOF;
  /// Corruption when the inbound stream failed to decode, Unavailable when
  /// the connection reset underneath us.
  Status health() const;

  int64_t frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  int64_t frames_received() const {
    return frames_received_.load(std::memory_order_relaxed);
  }
  size_t send_queue_depth() const { return send_queue_.size(); }

 private:
  void WriterLoop();
  void ReaderLoop();
  void SetHealth(const Status& status);
  /// Writer-side fatal error: records health, closes the send queue and
  /// shuts the socket down so every other party unblocks.
  void FailWriter(const Status& status);
  void TearDown(bool flush_queued);

  const TransportOptions options_;
  // analyze: lock-free(fd owned here; I/O threads use it full-duplex, mutated only after joins)
  Socket socket_;

  // analyze: lock-free(BlockingQueue is internally synchronized)
  BlockingQueue<std::string> send_queue_;  // Encoded frames.
  // analyze: lock-free(BlockingQueue is internally synchronized)
  BlockingQueue<Frame> recv_queue_;

  mutable check::Mutex mu_{"net.transport.mu"};
  Status health_ TXREP_GUARDED_BY(mu_) = Status::OK();
  bool stopped_ TXREP_GUARDED_BY(mu_) = false;

  std::atomic<bool> running_{true};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> frames_received_{0};

  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread writer_thread_;
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread reader_thread_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_frames_sent_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_frames_received_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_bytes_sent_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_bytes_received_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_backpressure_stalls_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_send_depth_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_recv_depth_ = nullptr;
};

}  // namespace txrep::net

#endif  // TXREP_NET_TRANSPORT_H_
