#ifndef TXREP_NET_FRAME_H_
#define TXREP_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace txrep::net {

/// Replication wire protocol version. Bumped on any incompatible frame or
/// payload layout change; the handshake rejects mismatches.
inline constexpr uint64_t kProtocolVersion = 1;

/// Frame types of the broker→replica replication protocol (DESIGN.md §13).
enum class FrameType : uint8_t {
  /// Client → server: open a log subscription (topic, resume LSN, credits).
  kSubscribe = 1,
  /// Server → client: subscription accepted; carries the catalog snapshot.
  kSubscribeAck = 2,
  /// Server → client: one replication batch (EncodeLogBatch payload).
  kBatch = 3,
  /// Client → server: replenish flow-control credits.
  kCredit = 4,
  /// Either direction: orderly stream end.
  kBye = 5,
  /// Server → client: subscription rejected / stream failed; body = reason.
  kError = 6,
};

/// Returns a stable display name ("SUBSCRIBE", "BATCH", ...).
const char* FrameTypeName(FrameType type);

/// One decoded wire frame: a type plus an opaque body. The body of control
/// frames is described by the typed payload structs below; the body of kBatch
/// is BatchPayload.
struct Frame {
  FrameType type = FrameType::kBye;
  std::string body;
};

bool operator==(const Frame& a, const Frame& b);

/// Frame layout (DESIGN.md §13):
///
///   offset 0  magic 'T' 'R'            (2 bytes)
///   offset 2  protocol version          (1 byte)
///   offset 3  frame type                (1 byte)
///   offset 4  body length N, fixed32 LE (4 bytes)
///   offset 8  body                      (N bytes)
///   8 + N     FNV-1a over [0, 8+N), fixed64 LE (8 bytes)
///
/// The checksum covers the header too, so a flipped type/length byte is
/// detected even when the (attacker-chosen) body still parses. Body size is
/// capped at kMaxFrameBody: a corrupt length can stall a stream (the decoder
/// waits for bytes that never come) but can never allocate unbounded memory.
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kFrameChecksumBytes = 8;
inline constexpr size_t kMaxFrameBody = 64u << 20;  // 64 MiB

/// Encodes one frame (header + body + checksum).
std::string EncodeFrame(const Frame& frame);

/// Incremental frame decoder for a byte stream: Feed() received bytes, then
/// drain complete frames with Next(). Corruption (bad magic/version/type,
/// oversized body, checksum mismatch) is sticky — a byte stream that lost
/// sync cannot be trusted again; the session must be torn down and
/// re-established.
class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer.
  void Feed(std::string_view bytes);

  /// Next complete frame; nullopt when more bytes are needed.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already decoded.
  Status error_ = Status::OK();
};

// --- typed control payloads -------------------------------------------------

/// kSubscribe body.
struct SubscribeRequest {
  uint64_t protocol_version = kProtocolVersion;
  std::string topic;
  /// Transactions with lsn <= this are already applied on the subscriber;
  /// the server starts the stream after them (batch granularity — a batch
  /// straddling the resume point is sent whole and deduped client-side).
  uint64_t resume_after_lsn = 0;
  /// Initial flow-control window, in batches the server may send before the
  /// first kCredit top-up.
  uint64_t initial_credits = 0;
};

/// kSubscribeAck body.
struct SubscribeAck {
  uint64_t protocol_version = kProtocolVersion;
  /// Lowest LSN the server's retention can still replay (0 = from the very
  /// beginning). A resume point below this is a hard gap: the subscriber
  /// must bootstrap from a checkpoint instead.
  uint64_t retained_floor_lsn = 0;
  /// Highest LSN published when the subscription was accepted.
  uint64_t last_published_lsn = 0;
  /// EncodeCatalog snapshot of the publisher's relational catalog, so a
  /// remote replica process can build its QueryTranslator without sharing an
  /// address space. Empty when the server has no catalog attached.
  std::string catalog;
};

/// kBatch body: the dense-LSN range plus the EncodeLogBatch bytes (which
/// carry per-transaction trace contexts and their own trailing checksum).
struct BatchPayload {
  uint64_t min_lsn = 0;
  uint64_t max_lsn = 0;
  uint64_t txn_count = 0;
  /// Broker publish instant (steady-clock micros of the *publisher*
  /// process; comparable across socketpair peers, only indicative over TCP).
  int64_t publish_micros = 0;
  std::string batch_bytes;
};

/// kCredit body.
struct CreditGrant {
  uint64_t credits = 0;
};

Frame MakeSubscribeFrame(const SubscribeRequest& request);
Frame MakeSubscribeAckFrame(const SubscribeAck& ack);
Frame MakeBatchFrame(const BatchPayload& payload);
Frame MakeCreditFrame(const CreditGrant& grant);
Frame MakeByeFrame(std::string_view reason);
Frame MakeErrorFrame(std::string_view reason);

/// Parsers return Corruption on a malformed body and InvalidArgument when
/// the frame type does not match.
Result<SubscribeRequest> ParseSubscribe(const Frame& frame);
Result<SubscribeAck> ParseSubscribeAck(const Frame& frame);
Result<BatchPayload> ParseBatch(const Frame& frame);
Result<CreditGrant> ParseCredit(const Frame& frame);
/// BYE / ERROR bodies carry a single length-prefixed reason string.
Result<std::string> ParseBye(const Frame& frame);
Result<std::string> ParseError(const Frame& frame);

}  // namespace txrep::net

#endif  // TXREP_NET_FRAME_H_
