#ifndef TXREP_NET_SOCKET_H_
#define TXREP_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace txrep::net {

/// RAII wrapper over a non-blocking stream socket (AF_UNIX socketpair or
/// loopback TCP). This file and socket.cc are the ONLY places in src/ that
/// issue socket/fd syscalls (scripts/lint.sh rule 6): every poll/send/recv
/// quirk — partial writes, EINTR, SIGPIPE, EOF-vs-would-block — is handled
/// here once, and the transport above reasons purely in frames and Status.
///
/// Concurrency contract: one reader thread and one writer thread may use the
/// same Socket concurrently (full-duplex, like the underlying fd);
/// ShutdownBoth()/Close() may be called from a third thread to force both
/// out of their poll waits.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connected AF_UNIX stream pair — the in-machine transport (benches, the
  /// schedule explorer's wire mode, single-host multi-replica tests).
  static Result<std::pair<Socket, Socket>> CreatePair();

  /// Listening TCP socket on 127.0.0.1:`port` (0 = ephemeral; local_port()
  /// tells which one the kernel picked).
  static Result<Socket> Listen(uint16_t port);

  /// Accepts one connection; TimedOut when none arrives in time,
  /// Unavailable once the socket is shut down.
  Result<Socket> Accept(int64_t timeout_micros);

  /// Connects to `host`:`port` (TCP).
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Sends at most bytes.size(); returns the number written — 0 means the
  /// kernel buffer is full (would-block), call WaitWritable and retry.
  /// Unavailable when the peer is gone.
  Result<size_t> Send(std::string_view bytes);

  /// Reads up to `len` bytes into `buf`; returns the number read — 0 means
  /// would-block unless `*eof` was set (orderly peer close). Unavailable on
  /// connection reset.
  Result<size_t> Recv(char* buf, size_t len, bool* eof);

  /// Blocks until readable / writable: OK, TimedOut, or Unavailable when the
  /// fd is closed or in error state.
  Status WaitReadable(int64_t timeout_micros);
  Status WaitWritable(int64_t timeout_micros);

  /// Forcefully tears the connection down (both directions): the peer sees
  /// EOF/reset, local blocked waits return. The test hook behind every
  /// kill-and-reconnect scenario. Idempotent; fd stays owned until Close().
  void ShutdownBoth();

  void Close();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Port a Listen() socket is bound to (0 for other sockets).
  uint16_t local_port() const { return local_port_; }

 private:
  Status MakeNonBlocking();

  int fd_ = -1;
  uint16_t local_port_ = 0;
};

}  // namespace txrep::net

#endif  // TXREP_NET_SOCKET_H_
