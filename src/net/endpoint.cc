#include "net/endpoint.h"

#include <utility>

#include "codec/log_codec.h"
#include "common/logging.h"
#include "obs/names.h"

namespace txrep::net {

NetEndpoint::NetEndpoint(mw::Broker* broker, EndpointOptions options,
                         obs::MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    g_sessions_ = metrics_->GetGauge(obs::kNetSessions);
    g_retained_ = metrics_->GetGauge(obs::kNetRetainedBatches);
    c_credit_stalls_ = metrics_->GetCounter(obs::kNetBackpressureStalls,
                                            {{"role", "server"}});
  }
  broker->AttachFanout(options_.topic,
                       [this](const mw::Message& m) { PublishMessage(m); });
}

NetEndpoint::~NetEndpoint() { Stop(); }

void NetEndpoint::SetCatalog(std::string encoded_catalog) {
  check::MutexLock lock(&mu_);
  catalog_ = std::move(encoded_catalog);
}

void NetEndpoint::SetRetentionFloor(uint64_t lsn) {
  check::MutexLock lock(&mu_);
  if (lsn > floor_lsn_) floor_lsn_ = lsn;
  if (lsn > last_published_lsn_) last_published_lsn_ = lsn;
}

Status NetEndpoint::ListenAndServe(uint16_t port) {
  TXREP_ASSIGN_OR_RETURN(listener_, Socket::Listen(port));
  accepting_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint16_t NetEndpoint::port() const { return listener_.local_port(); }

Status NetEndpoint::ServeSocket(Socket socket) {
  auto transport = std::make_unique<FrameTransport>(
      std::move(socket), options_.transport, metrics_, "server");
  check::MutexLock lock(&mu_);
  if (stopping_) return Status::Unavailable("endpoint is stopping");
  session_threads_.emplace_back(
      [this, t = std::move(transport)]() mutable { RunSession(std::move(t)); });
  return Status::OK();
}

void NetEndpoint::AcceptLoop() {
  while (accepting_.load(std::memory_order_relaxed)) {
    Result<Socket> client = listener_.Accept(options_.accept_timeout_micros);
    if (!client.ok()) {
      if (client.status().IsTimedOut()) continue;
      if (accepting_.load(std::memory_order_relaxed)) {
        TXREP_LOG(kWarn) << "net endpoint accept failed: "
                         << client.status().ToString();
      }
      return;
    }
    Status served = ServeSocket(std::move(*client));
    if (!served.ok()) return;  // Stopping.
  }
}

void NetEndpoint::PublishMessage(const mw::Message& message) {
  Result<codec::LogBatchStats> stats = codec::ScanLogBatch(message.payload);
  if (!stats.ok()) {
    // The broker ships opaque bytes; anything non-batch on this topic cannot
    // cross the wire boundary (frames carry dense-LSN ranges).
    TXREP_LOG(kWarn) << "net endpoint dropped unscannable message: "
                     << stats.status().ToString();
    return;
  }
  auto batch = std::make_shared<const RetainedBatch>(RetainedBatch{
      stats->min_lsn, stats->max_lsn, static_cast<uint64_t>(stats->txn_count),
      message.publish_micros, message.payload});
  std::vector<std::shared_ptr<Session>> live;
  size_t retained_count = 0;
  {
    check::MutexLock lock(&mu_);
    retained_.push_back(batch);
    while (retained_.size() > options_.retention_capacity) {
      floor_lsn_ = retained_.front()->max_lsn;
      retained_.pop_front();
    }
    if (batch->max_lsn > last_published_lsn_) {
      last_published_lsn_ = batch->max_lsn;
    }
    live = sessions_;
    retained_count = retained_.size();
  }
  // Feed sessions outside mu_: a full (bounded) session queue blocks the
  // broker delivery thread right here, which backs pressure up through the
  // broker's pending queue into Publish(). A closed queue means the session
  // died — skip it, the reaper path removes it.
  for (const std::shared_ptr<Session>& session : live) {
    (void)session->queue.Push(batch);
  }
  if (g_retained_ != nullptr) {
    g_retained_->Set(static_cast<int64_t>(retained_count));
  }
}

void NetEndpoint::RunSession(std::unique_ptr<FrameTransport> transport) {
  // The transport lives in the session from here on (immutable pointer), so
  // DropSessions() can Abort() it from another thread without racing a move.
  auto session = std::make_shared<Session>(options_.session_queue_capacity);
  session->transport = std::move(transport);
  {
    check::MutexLock lock(&mu_);
    if (stopping_) return;
    handshaking_.push_back(session);
  }

  // --- handshake -----------------------------------------------------------
  std::optional<Frame> first = session->transport->Receive();
  if (!first.has_value()) {
    FinishHandshake(session.get());
    return;
  }
  Result<SubscribeRequest> request = ParseSubscribe(*first);
  if (!request.ok()) {
    session->transport->Send(MakeErrorFrame(request.status().ToString()));
    FinishHandshake(session.get());
    return;
  }
  if (request->protocol_version != kProtocolVersion) {
    session->transport->Send(MakeErrorFrame("protocol version mismatch"));
    FinishHandshake(session.get());
    return;
  }
  if (request->topic != options_.topic) {
    session->transport->Send(
        MakeErrorFrame("unknown topic \"" + request->topic + "\""));
    FinishHandshake(session.get());
    return;
  }

  SubscribeAck ack;
  std::vector<BatchRef> backlog;
  std::string reject;
  {
    check::MutexLock lock(&mu_);
    for (auto it = handshaking_.begin(); it != handshaking_.end(); ++it) {
      if (it->get() == session.get()) {
        handshaking_.erase(it);
        break;
      }
    }
    if (stopping_) {
      reject = "endpoint is stopping";
    } else if (request->resume_after_lsn < floor_lsn_) {
      // Retention rolled past the subscriber's position: replaying from here
      // would leave a silent LSN gap. Reject; the subscriber must bootstrap
      // from a checkpoint and come back with a higher resume point.
      reject = "resume LSN " + std::to_string(request->resume_after_lsn) +
               " below retention floor " + std::to_string(floor_lsn_) +
               "; bootstrap required";
    } else {
      ack.retained_floor_lsn = floor_lsn_;
      ack.last_published_lsn = last_published_lsn_;
      ack.catalog = catalog_;
      // Atomically with the retention snapshot: batches already retained go
      // to the backlog, batches published from now on reach session->queue.
      // The shared lock makes this exactly-once (see PublishMessage).
      for (const BatchRef& batch : retained_) {
        if (batch->max_lsn > request->resume_after_lsn) {
          backlog.push_back(batch);
        }
      }
      sessions_.push_back(session);
      if (g_sessions_ != nullptr) {
        g_sessions_->Set(static_cast<int64_t>(sessions_.size()));
      }
    }
  }
  if (!reject.empty()) {
    session->transport->Send(MakeErrorFrame(reject));
    return;
  }
  {
    check::MutexLock lock(&session->mu);
    session->credits = request->initial_credits;
  }
  if (!session->transport->Send(MakeSubscribeAckFrame(ack))) {
    RemoveSession(session.get());
    return;
  }

  std::thread control([this, session] { ControlLoop(session); });

  // --- batch stream: retained backlog first, then the live feed ------------
  auto send_batch = [this, &session](const BatchRef& batch) -> bool {
    {
      check::MutexLock lock(&session->mu);
      if (session->credits == 0 && !session->done &&
          c_credit_stalls_ != nullptr) {
        c_credit_stalls_->Increment();
      }
      while (session->credits == 0 && !session->done) session->cv.Wait();
      if (session->done) return false;
      --session->credits;
    }
    BatchPayload payload;
    payload.min_lsn = batch->min_lsn;
    payload.max_lsn = batch->max_lsn;
    payload.txn_count = batch->txn_count;
    payload.publish_micros = batch->publish_micros;
    payload.batch_bytes = batch->payload;
    return session->transport->Send(MakeBatchFrame(payload));
  };

  bool healthy = true;
  for (const BatchRef& batch : backlog) {
    if (!send_batch(batch)) {
      healthy = false;
      break;
    }
  }
  while (healthy) {
    std::optional<BatchRef> batch = session->queue.Pop();
    if (!batch.has_value()) break;  // Stopped or dropped.
    if (!send_batch(*batch)) healthy = false;
  }

  if (healthy && session->transport->health().ok()) {
    session->transport->Send(MakeByeFrame("server shutdown"));
  }
  session->transport->Close();  // Flushes the Bye, wakes the control loop.
  control.join();
  RemoveSession(session.get());
}

void NetEndpoint::ControlLoop(const std::shared_ptr<Session>& session) {
  for (;;) {
    std::optional<Frame> frame = session->transport->Receive();
    if (!frame.has_value()) break;  // Peer gone / transport down.
    if (frame->type == FrameType::kCredit) {
      Result<CreditGrant> grant = ParseCredit(*frame);
      if (!grant.ok()) break;
      check::MutexLock lock(&session->mu);
      session->credits += grant->credits;
      session->cv.NotifyAll();
      continue;
    }
    if (frame->type == FrameType::kBye) break;  // Orderly unsubscribe.
    // Anything else is a protocol violation; drop the session.
    break;
  }
  {
    check::MutexLock lock(&session->mu);
    session->done = true;
    session->cv.NotifyAll();
  }
  session->queue.Close();
}

void NetEndpoint::RemoveSession(const Session* session) {
  check::MutexLock lock(&mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == session) {
      sessions_.erase(it);
      break;
    }
  }
  if (g_sessions_ != nullptr) {
    g_sessions_->Set(static_cast<int64_t>(sessions_.size()));
  }
}

void NetEndpoint::FinishHandshake(const Session* session) {
  check::MutexLock lock(&mu_);
  for (auto it = handshaking_.begin(); it != handshaking_.end(); ++it) {
    if (it->get() == session) {
      handshaking_.erase(it);
      break;
    }
  }
}

void NetEndpoint::Stop() {
  std::vector<std::shared_ptr<Session>> live;
  std::vector<std::shared_ptr<Session>> handshaking;
  std::vector<std::thread> threads;
  {
    check::MutexLock lock(&mu_);
    stopping_ = true;
    live = sessions_;
    handshaking = handshaking_;
    threads.swap(session_threads_);
  }
  // A session parked in its handshake Receive() holds no queue to close —
  // abort its transport so the join below cannot hang.
  for (const std::shared_ptr<Session>& session : handshaking) {
    session->transport->Abort();
  }
  accepting_.store(false, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  for (const std::shared_ptr<Session>& session : live) {
    // done wakes credit waits (a stalled subscriber cannot hang Stop);
    // closing the queue ends the live feed, after which the session thread
    // sends its kBye and unwinds.
    {
      check::MutexLock lock(&session->mu);
      session->done = true;
      session->cv.NotifyAll();
    }
    session->queue.Close();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void NetEndpoint::DropSessions() {
  std::vector<std::shared_ptr<Session>> live;
  {
    check::MutexLock lock(&mu_);
    live = sessions_;
    live.insert(live.end(), handshaking_.begin(), handshaking_.end());
  }
  for (const std::shared_ptr<Session>& session : live) {
    // Abort the wire first (subscribers see a mid-stream reset), then wake
    // the session thread so it unwinds and deregisters.
    session->transport->Abort();
    {
      check::MutexLock lock(&session->mu);
      session->done = true;
      session->cv.NotifyAll();
    }
    session->queue.Close();
  }
}

size_t NetEndpoint::live_sessions() const {
  check::MutexLock lock(&mu_);
  return sessions_.size();
}

uint64_t NetEndpoint::last_published_lsn() const {
  check::MutexLock lock(&mu_);
  return last_published_lsn_;
}

uint64_t NetEndpoint::retained_floor_lsn() const {
  check::MutexLock lock(&mu_);
  return floor_lsn_;
}

}  // namespace txrep::net
