#include "net/transport.h"

#include <utility>

#include "obs/names.h"

namespace txrep::net {

FrameTransport::FrameTransport(Socket socket, TransportOptions options,
                               obs::MetricsRegistry* metrics, const char* role)
    : options_(options),
      socket_(std::move(socket)),
      send_queue_(options.send_queue_capacity),
      recv_queue_(options.recv_queue_capacity) {
  if (metrics != nullptr) {
    const obs::Labels labels = {{"role", role}};
    c_frames_sent_ = metrics->GetCounter(obs::kNetFramesSent, labels);
    c_frames_received_ = metrics->GetCounter(obs::kNetFramesReceived, labels);
    c_bytes_sent_ = metrics->GetCounter(obs::kNetBytesSent, labels);
    c_bytes_received_ = metrics->GetCounter(obs::kNetBytesReceived, labels);
    c_backpressure_stalls_ =
        metrics->GetCounter(obs::kNetBackpressureStalls, labels);
    g_send_depth_ =
        metrics->GetGauge(obs::kQueueDepth, {{"queue", obs::kQueueNetSend}});
    g_recv_depth_ =
        metrics->GetGauge(obs::kQueueDepth, {{"queue", obs::kQueueNetRecv}});
  }
  writer_thread_ = std::thread([this] { WriterLoop(); });
  reader_thread_ = std::thread([this] { ReaderLoop(); });
}

FrameTransport::~FrameTransport() { Close(); }

bool FrameTransport::Send(Frame frame) {
  std::string encoded = EncodeFrame(frame);
  if (send_queue_.size() >= options_.send_queue_capacity &&
      c_backpressure_stalls_ != nullptr) {
    c_backpressure_stalls_->Increment();
  }
  if (!send_queue_.Push(std::move(encoded))) return false;
  if (g_send_depth_ != nullptr) {
    g_send_depth_->Set(static_cast<int64_t>(send_queue_.size()));
  }
  return true;
}

std::optional<Frame> FrameTransport::Receive() {
  std::optional<Frame> frame = recv_queue_.Pop();
  if (g_recv_depth_ != nullptr) {
    g_recv_depth_->Set(static_cast<int64_t>(recv_queue_.size()));
  }
  return frame;
}

std::optional<Frame> FrameTransport::TryReceive() {
  std::optional<Frame> frame = recv_queue_.TryPop();
  if (frame.has_value() && g_recv_depth_ != nullptr) {
    g_recv_depth_->Set(static_cast<int64_t>(recv_queue_.size()));
  }
  return frame;
}

void FrameTransport::WriterLoop() {
  for (;;) {
    std::optional<std::string> encoded = send_queue_.Pop();
    if (!encoded.has_value()) return;  // Closed and drained.
    if (g_send_depth_ != nullptr) {
      g_send_depth_->Set(static_cast<int64_t>(send_queue_.size()));
    }
    std::string_view remaining = *encoded;
    // Bound the total stall per frame so Close() can never hang behind a
    // peer that stopped reading: after the cap the frame (and the stream)
    // is abandoned with an Unavailable health.
    int64_t stalled_micros = 0;
    const int64_t max_stall = options_.poll_timeout_micros * 250;
    while (!remaining.empty()) {
      Result<size_t> sent = socket_.Send(remaining);
      if (!sent.ok()) {
        FailWriter(sent.status());
        return;
      }
      if (*sent == 0) {
        if (!running_.load(std::memory_order_relaxed)) return;
        if (c_backpressure_stalls_ != nullptr) {
          c_backpressure_stalls_->Increment();
        }
        Status writable = socket_.WaitWritable(options_.poll_timeout_micros);
        if (writable.IsTimedOut()) {
          stalled_micros += options_.poll_timeout_micros;
          if (stalled_micros >= max_stall) {
            FailWriter(Status::Unavailable("send stalled past flush bound"));
            return;
          }
          continue;
        }
        if (!writable.ok()) {
          FailWriter(writable);
          return;
        }
        continue;
      }
      if (c_bytes_sent_ != nullptr) {
        c_bytes_sent_->Increment(static_cast<int64_t>(*sent));
      }
      remaining.remove_prefix(*sent);
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (c_frames_sent_ != nullptr) c_frames_sent_->Increment();
  }
}

void FrameTransport::ReaderLoop() {
  FrameDecoder decoder;
  char buf[64 << 10];
  while (running_.load(std::memory_order_relaxed)) {
    Status readable = socket_.WaitReadable(options_.poll_timeout_micros);
    if (readable.IsTimedOut()) continue;
    if (!readable.ok()) break;
    bool eof = false;
    Result<size_t> received = socket_.Recv(buf, sizeof(buf), &eof);
    if (!received.ok()) {
      SetHealth(received.status());
      break;
    }
    if (eof) break;  // Orderly peer close; health stays OK.
    if (*received == 0) continue;
    if (c_bytes_received_ != nullptr) {
      c_bytes_received_->Increment(static_cast<int64_t>(*received));
    }
    decoder.Feed(std::string_view(buf, *received));
    bool failed = false;
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        SetHealth(next.status());
        failed = true;
        break;
      }
      if (!next->has_value()) break;
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (c_frames_received_ != nullptr) c_frames_received_->Increment();
      if (recv_queue_.size() >= options_.recv_queue_capacity &&
          c_backpressure_stalls_ != nullptr) {
        // The inbound queue is full: parking here stops draining the kernel
        // buffer, which is how backpressure crosses the wire to the sender.
        c_backpressure_stalls_->Increment();
      }
      if (!recv_queue_.Push(std::move(**next))) {
        failed = true;  // Local shutdown raced us.
        break;
      }
      if (g_recv_depth_ != nullptr) {
        g_recv_depth_->Set(static_cast<int64_t>(recv_queue_.size()));
      }
    }
    if (failed) break;
  }
  // End of inbound stream: consumers drain what arrived, then see nullopt.
  recv_queue_.Close();
}

void FrameTransport::SetHealth(const Status& status) {
  check::MutexLock lock(&mu_);
  if (health_.ok() && !stopped_) health_ = status;
}

void FrameTransport::FailWriter(const Status& status) {
  SetHealth(status);
  // The stream is dead: unblock producers parked on a full send queue (their
  // Send() returns false) and wake the reader so it observes the teardown —
  // otherwise a Send() against a vanished peer could block forever.
  send_queue_.Close();
  socket_.ShutdownBoth();
}

Status FrameTransport::health() const {
  check::MutexLock lock(&mu_);
  return health_;
}

void FrameTransport::TearDown(bool flush_queued) {
  {
    check::MutexLock lock(&mu_);
    stopped_ = true;
  }
  if (!flush_queued) {
    running_.store(false, std::memory_order_relaxed);
    socket_.ShutdownBoth();
  }
  send_queue_.Close();
  if (writer_thread_.joinable()) writer_thread_.join();
  // Writer is drained (or abandoned); now tear the socket down so the
  // reader's poll wakes with EOF, and join it.
  running_.store(false, std::memory_order_relaxed);
  socket_.ShutdownBoth();
  if (reader_thread_.joinable()) reader_thread_.join();
  recv_queue_.Close();
}

void FrameTransport::Close() { TearDown(/*flush_queued=*/true); }

void FrameTransport::Abort() {
  {
    check::MutexLock lock(&mu_);
    if (health_.ok() && !stopped_) {
      health_ = Status::Unavailable("transport aborted");
    }
  }
  running_.store(false, std::memory_order_relaxed);
  socket_.ShutdownBoth();
  send_queue_.Close();
  recv_queue_.Close();
}

}  // namespace txrep::net
