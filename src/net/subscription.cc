#include "net/subscription.h"

#include <memory>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"

namespace txrep::net {

NetSubscription::NetSubscription(SocketFactory factory,
                                 NetSubscriptionOptions options,
                                 obs::MetricsRegistry* metrics)
    : factory_(std::move(factory)),
      options_(std::move(options)),
      metrics_(metrics),
      queue_(options_.queue_capacity) {
  {
    check::MutexLock lock(&mu_);
    delivered_lsn_ = options_.resume_after_lsn;
  }
  if (metrics_ != nullptr) {
    c_connects_ = metrics_->GetCounter(obs::kNetConnects);
  }
  connect_thread_ = std::thread([this] { ConnectLoop(); });
}

NetSubscription::~NetSubscription() { Close(); }

void NetSubscription::ConnectLoop() {
  int failed_attempts = 0;
  while (running_.load(std::memory_order_relaxed)) {
    Result<Socket> socket = factory_();
    if (!socket.ok()) {
      ++failed_attempts;
      if (options_.max_connect_attempts > 0 &&
          failed_attempts >= options_.max_connect_attempts) {
        Fail(socket.status());
        break;
      }
      SleepForMicros(options_.reconnect_backoff_micros);
      continue;
    }
    failed_attempts = 0;
    if (!RunOnce(std::move(*socket))) break;
    // Transport dropped mid-stream: re-dial and resume from the high-water
    // LSN. Back off a little so a flapping server isn't hammered.
    if (running_.load(std::memory_order_relaxed)) {
      SleepForMicros(options_.reconnect_backoff_micros);
    }
  }
  // End of stream, orderly or not: consumers drain, then see nullopt.
  queue_.Close();
  check::MutexLock lock(&mu_);
  ended_ = true;
  cv_.NotifyAll();
}

bool NetSubscription::RunOnce(Socket socket) {
  auto transport = std::make_unique<FrameTransport>(
      std::move(socket), options_.transport, metrics_, "client");
  {
    check::MutexLock lock(&mu_);
    transport_ = transport.get();
  }
  // Make sure the pointer is cleared before the transport dies, whatever
  // path exits this function.
  struct Deregister {
    NetSubscription* self;
    ~Deregister() {
      check::MutexLock lock(&self->mu_);
      self->transport_ = nullptr;
    }
  } deregister{this};

  // --- handshake -----------------------------------------------------------
  SubscribeRequest request;
  request.topic = options_.topic;
  request.initial_credits = options_.initial_credits;
  request.resume_after_lsn = delivered_lsn();
  if (!transport->Send(MakeSubscribeFrame(request))) return true;
  std::optional<Frame> reply = transport->Receive();
  if (!reply.has_value()) {
    // Never even got an ack — transient (server restarting); retry.
    return true;
  }
  if (reply->type == FrameType::kError) {
    // The server rejected us outright (resume below retention floor,
    // version/topic mismatch). Retrying cannot help.
    Result<std::string> reason = ParseError(*reply);
    Fail(Status::Unavailable("subscription rejected: " +
                             (reason.ok() ? *reason : reply->body)));
    return false;
  }
  Result<SubscribeAck> ack = ParseSubscribeAck(*reply);
  if (!ack.ok()) {
    Fail(ack.status());
    return false;
  }
  if (ack->protocol_version != kProtocolVersion) {
    Fail(Status::Unavailable("server speaks protocol version " +
                             std::to_string(ack->protocol_version)));
    return false;
  }
  {
    check::MutexLock lock(&mu_);
    if (!connected_once_) catalog_ = ack->catalog;
    connected_once_ = true;
    ++connects_;
    cv_.NotifyAll();
  }
  if (c_connects_ != nullptr) c_connects_->Increment();

  // --- batch stream --------------------------------------------------------
  while (std::optional<Frame> frame = transport->Receive()) {
    switch (frame->type) {
      case FrameType::kBatch: {
        Result<BatchPayload> batch = ParseBatch(*frame);
        if (!batch.ok()) {
          Fail(batch.status());
          return false;
        }
        const uint64_t high_water = delivered_lsn();
        if (batch->max_lsn <= high_water) {
          // Fully-duplicate batch (reconnect replayed retention we already
          // consumed). Drop it — but it did cost a server credit.
          transport->Send(MakeCreditFrame({1}));
          continue;
        }
        if (batch->min_lsn > high_water + 1) {
          // LSNs are dense; a hole means retention or the transport lost
          // data underneath us. Same invariant recovery enforces on the log
          // tail: refuse to continue rather than apply with a gap.
          Fail(Status::Corruption(
              "LSN gap on the wire: have " + std::to_string(high_water) +
              ", next batch starts at " + std::to_string(batch->min_lsn)));
          return false;
        }
        mw::Message message;
        message.topic = options_.topic;
        message.payload = std::move(batch->batch_bytes);
        message.publish_micros = batch->publish_micros;
        message.deliver_micros = NowMicros();
        if (!queue_.Push(std::move(message))) return false;  // Closed.
        {
          check::MutexLock lock(&mu_);
          if (batch->max_lsn > delivered_lsn_) {
            delivered_lsn_ = batch->max_lsn;
          }
        }
        // Credit only after the (possibly bounded) queue accepted the
        // batch: a stalled local consumer stops the credit flow and the
        // server's sender parks — backpressure across the wire.
        transport->Send(MakeCreditFrame({1}));
        break;
      }
      case FrameType::kBye:
        // Orderly server shutdown: end of stream, no reconnect.
        return false;
      case FrameType::kError:
        Fail(Status::Unavailable("server error: " + frame->body));
        return false;
      default:
        Fail(Status::Corruption(std::string("unexpected frame ") +
                                FrameTypeName(frame->type)));
        return false;
    }
  }
  // Stream ended without a Bye. A decode failure is sticky Corruption (the
  // stream lost sync — do not trust a resume either... but the server frames
  // are checksummed per-batch, so resuming is safe: the bad bytes never
  // reached the log). Treat everything as a drop: reconnect unless closing.
  if (transport->health().IsCorruption()) {
    TXREP_LOG(kWarn) << "net subscription dropped corrupt stream: "
                     << transport->health().ToString();
  }
  return running_.load(std::memory_order_relaxed);
}

void NetSubscription::Fail(const Status& status) {
  TXREP_LOG(kWarn) << "net subscription failed: " << status.ToString();
  check::MutexLock lock(&mu_);
  if (health_.ok()) health_ = status;
  cv_.NotifyAll();
}

void NetSubscription::Close() {
  running_.store(false, std::memory_order_relaxed);
  queue_.Close();
  {
    check::MutexLock lock(&mu_);
    if (transport_ != nullptr) transport_->Abort();
    cv_.NotifyAll();
  }
  if (connect_thread_.joinable() &&
      connect_thread_.get_id() != std::this_thread::get_id()) {
    connect_thread_.join();
  }
}

Status NetSubscription::WaitConnected() {
  check::MutexLock lock(&mu_);
  while (!connected_once_ && health_.ok() && !ended_) cv_.Wait();
  if (connected_once_) return Status::OK();
  if (!health_.ok()) return health_;
  return Status::Unavailable("subscription closed before connecting");
}

std::string NetSubscription::catalog() const {
  check::MutexLock lock(&mu_);
  return catalog_;
}

Status NetSubscription::health() const {
  check::MutexLock lock(&mu_);
  return health_;
}

uint64_t NetSubscription::delivered_lsn() const {
  check::MutexLock lock(&mu_);
  return delivered_lsn_;
}

int64_t NetSubscription::connects() const {
  check::MutexLock lock(&mu_);
  return connects_;
}

void NetSubscription::InjectDisconnect() {
  check::MutexLock lock(&mu_);
  if (transport_ != nullptr) transport_->Abort();
}

}  // namespace txrep::net
