#include "core/txn_buffer.h"

#include <algorithm>

namespace txrep::core {

TxnBuffer::TxnBuffer(kv::KvStore* base, bool read_cache)
    : base_(base), read_cache_enabled_(read_cache) {}

Status TxnBuffer::Put(const kv::Key& key, const kv::Value& value) {
  writes_[key] = WriteEntry{false, value};
  write_set_.insert(key);
  return Status::OK();
}

Status TxnBuffer::Delete(const kv::Key& key) {
  writes_[key] = WriteEntry{true, {}};
  write_set_.insert(key);
  return Status::OK();
}

Result<kv::Value> TxnBuffer::Get(const kv::Key& key) {
  // Own writes win.
  auto w = writes_.find(key);
  if (w != writes_.end()) {
    if (w->second.tombstone) {
      return Status::NotFound("key \"" + key + "\" deleted in transaction");
    }
    return w->second.value;
  }
  // Read-through cache.
  if (read_cache_enabled_) {
    auto c = read_cache_.find(key);
    if (c != read_cache_.end()) {
      if (!c->second.has_value()) {
        return Status::NotFound("key \"" + key + "\" not present (cached)");
      }
      return *c->second;
    }
  }
  // Base store; the access is what defines the read set.
  read_set_.insert(key);
  Result<kv::Value> result = base_->Get(key);
  if (result.ok()) {
    if (read_cache_enabled_) read_cache_[key] = result.value();
    return result;
  }
  if (result.status().IsNotFound()) {
    if (read_cache_enabled_) read_cache_[key] = std::nullopt;
  }
  return result;
}

bool TxnBuffer::Contains(const kv::Key& key) {
  Result<kv::Value> r = Get(key);
  return r.ok();
}

size_t TxnBuffer::Size() {
  // Merged view size is not cheaply available; report the base size adjusted
  // by buffered inserts/deletes best-effort (used only in diagnostics).
  size_t size = base_->Size();
  for (const auto& [key, entry] : writes_) {
    const bool existed = base_->Contains(key);
    if (entry.tombstone && existed && size > 0) --size;
    if (!entry.tombstone && !existed) ++size;
  }
  return size;
}

kv::StoreDump TxnBuffer::Dump() {
  kv::StoreDump dump = base_->Dump();
  kv::StoreDump merged;
  merged.reserve(dump.size() + writes_.size());
  auto w = writes_.begin();
  for (auto& [key, value] : dump) {
    while (w != writes_.end() && w->first < key) {
      if (!w->second.tombstone) merged.emplace_back(w->first, w->second.value);
      ++w;
    }
    if (w != writes_.end() && w->first == key) {
      if (!w->second.tombstone) merged.emplace_back(w->first, w->second.value);
      ++w;
      continue;
    }
    merged.emplace_back(std::move(key), std::move(value));
  }
  for (; w != writes_.end(); ++w) {
    if (!w->second.tombstone) merged.emplace_back(w->first, w->second.value);
  }
  return merged;
}

kv::KvWriteBatch TxnBuffer::WriteBatch() const {
  kv::KvWriteBatch batch;
  batch.reserve(writes_.size());
  for (const auto& [key, entry] : writes_) {
    if (entry.tombstone) {
      batch.push_back(kv::KvWrite::Delete(key));
    } else {
      batch.push_back(kv::KvWrite::Put(key, entry.value));
    }
  }
  return batch;
}

Status TxnBuffer::ApplyTo(kv::KvStore* target) const {
  return target->MultiWrite(WriteBatch());
}

}  // namespace txrep::core
