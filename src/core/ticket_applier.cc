#include "core/ticket_applier.h"

#include <algorithm>

#include "common/clock.h"
#include "core/txn_buffer.h"

namespace txrep::core {

void TicketApplier::LockManager::Register(
    uint64_t ticket, const std::vector<std::string>& tables) {
  check::MutexLock lock(&mu_);
  for (const std::string& table : tables) {
    queues_[table].insert(ticket);
  }
}

bool TicketApplier::LockManager::GrantedLocked(
    uint64_t ticket, const std::vector<std::string>& tables) const {
  for (const std::string& table : tables) {
    auto it = queues_.find(table);
    if (it == queues_.end() || it->second.empty()) continue;  // Defensive.
    if (*it->second.begin() != ticket) return false;
  }
  return true;
}

bool TicketApplier::LockManager::AcquireAll(
    uint64_t ticket, const std::vector<std::string>& tables) {
  check::MutexLock lock(&mu_);
  if (GrantedLocked(ticket, tables)) return false;
  while (!GrantedLocked(ticket, tables)) cv_.Wait();
  return true;
}

void TicketApplier::LockManager::Release(
    uint64_t ticket, const std::vector<std::string>& tables) {
  check::MutexLock lock(&mu_);
  for (const std::string& table : tables) {
    auto it = queues_.find(table);
    if (it == queues_.end()) continue;
    it->second.erase(ticket);
    if (it->second.empty()) queues_.erase(it);
  }
  cv_.NotifyAll();
}

TicketApplier::TicketApplier(kv::KvStore* store,
                             const qt::QueryTranslator* translator,
                             TicketApplierOptions options,
                             trace::Tracer* tracer)
    : store_(store),
      translator_(translator),
      tracer_(tracer),
      dispatcher_(options.dispatch) {
  pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options.threads)), "ticket-applier");
}

TicketApplier::~TicketApplier() {
  // analyze: discard(destructor drain; nothing to return a timeout to)
  (void)WaitIdle();
  pool_->Shutdown();
}

void TicketApplier::Submit(rel::LogTransaction txn) {
  auto tables = std::make_shared<std::vector<std::string>>();
  for (const rel::LogOp& op : txn.ops) {
    if (std::find(tables->begin(), tables->end(), op.table) == tables->end()) {
      tables->push_back(op.table);
    }
  }
  uint64_t ticket;
  {
    check::MutexLock lock(&mu_);
    ticket = next_ticket_++;
    ++in_flight_;
    ++stats_.submitted;
  }
  // Interest must be declared in ticket order — here, under submission
  // order — so later tickets always queue behind this one.
  locks_.Register(ticket, *tables);
  auto payload = std::make_shared<rel::LogTransaction>(std::move(txn));
  pool_->Submit([this, ticket, payload, tables] {
    ApplyTask(ticket, payload, tables);
  });
}

void TicketApplier::ApplyTask(uint64_t ticket,
                              std::shared_ptr<rel::LogTransaction> txn,
                              std::shared_ptr<std::vector<std::string>> tables) {
  const int64_t apply_start = NowMicros();
  const bool waited = locks_.AcquireAll(ticket, *tables);
  const int64_t locks_granted = NowMicros();
  Status status;
  {
    check::MutexLock lock(&mu_);
    status = health_;
  }
  if (status.ok()) {
    // Execute into a private buffer under the table locks, then publish the
    // coalesced write set in batches. The locks are still held across the
    // publish, so ticket-order serialization per table is unchanged.
    TxnBuffer buffer(store_);
    status = translator_->ApplyTransaction(&buffer, *txn);
    if (status.ok()) {
      status = dispatcher_.Dispatch(store_, buffer.WriteBatch());
    }
  }
  locks_.Release(ticket, *tables);
  if (status.ok() && tracer_ != nullptr && txn->trace.sampled) {
    const int64_t now = NowMicros();
    // Ticket-2PL has no commit evaluation: waiting for in-order lock grants
    // is the apply queue share.
    tracer_->RecordSpan(txn->trace, txn->lsn, trace::SpanStage::kApply,
                        apply_start, now, locks_granted - apply_start);
    if (txn->commit_micros != 0) {
      tracer_->RecordSpan(txn->trace, txn->lsn, trace::SpanStage::kE2e,
                          txn->commit_micros, now, 0);
    }
  }
  check::MutexLock lock(&mu_);
  if (waited) ++stats_.lock_waits;
  if (!status.ok() && health_.ok()) {
    health_ = status;
  }
  if (status.ok()) ++stats_.completed;
  if (--in_flight_ == 0) idle_cv_.NotifyAll();
}

Status TicketApplier::WaitIdle() {
  check::MutexLock lock(&mu_);
  while (in_flight_ != 0) idle_cv_.Wait();
  return health_;
}

TicketApplierStats TicketApplier::stats() const {
  check::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace txrep::core
