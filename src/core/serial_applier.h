#ifndef TXREP_CORE_SERIAL_APPLIER_H_
#define TXREP_CORE_SERIAL_APPLIER_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "core/batch_dispatcher.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"
#include "qt/query_translator.h"
#include "rel/txlog.h"
#include "trace/slo.h"
#include "trace/tracer.h"

namespace txrep::core {

/// The baseline of the paper's evaluation (§6.3, "most of the existing
/// replication approaches use single threaded serial execution of updates in
/// the replica"): transactions replay strictly one after another, each
/// applied directly to the key-value store. Trivially respects the
/// execution-defined order; exploits no concurrency.
class SerialApplier {
 public:
  /// `store` and `translator` must outlive the applier. `metrics` (optional,
  /// same lifetime rule) receives the apply / e2e stage latency histograms.
  /// `dispatch` configures the write-set coalescing dispatcher: each
  /// transaction executes into a private TxnBuffer (reads go through to the
  /// store) and the coalesced write set ships as MultiWrite chunks —
  /// equivalent to direct application because a buffered transaction reads
  /// its own writes and each key appears once in the write set.
  /// `tracer` / `slo` (optional, same lifetime rule) receive the apply and
  /// e2e spans / the replica lag of every applied transaction.
  SerialApplier(kv::KvStore* store, const qt::QueryTranslator* translator,
                obs::MetricsRegistry* metrics = nullptr,
                BatchDispatchOptions dispatch = {},
                trace::Tracer* tracer = nullptr,
                trace::SloWatchdog* slo = nullptr);

  SerialApplier(const SerialApplier&) = delete;
  SerialApplier& operator=(const SerialApplier&) = delete;

  /// Applies one logged transaction; returns on first error.
  Status Apply(const rel::LogTransaction& txn);

  /// Applies a batch in order.
  Status ApplyBatch(const std::vector<rel::LogTransaction>& batch);

  int64_t applied() const { return applied_; }

  /// The applier's write-set dispatcher (e.g. to inspect the adaptive batch
  /// size in tests).
  const BatchDispatcher& dispatcher() const { return dispatcher_; }

  /// LSN of the last applied transaction (0 before the first). Serial
  /// replay is in-order, so this is always the applied-prefix end — the
  /// serial path's snapshot-epoch source. Atomic: checkpointing reads it
  /// from another thread while the applier owns the apply thread.
  uint64_t last_applied_lsn() const {
    return last_applied_lsn_.load(std::memory_order_acquire);
  }

 private:
  kv::KvStore* store_;                     // Not owned.
  const qt::QueryTranslator* translator_;  // Not owned.
  trace::Tracer* tracer_;                  // Not owned; may be null.
  trace::SloWatchdog* slo_;                // Not owned; may be null.
  BatchDispatcher dispatcher_;
  int64_t applied_ = 0;
  std::atomic<uint64_t> last_applied_lsn_{0};

  Histogram* h_stage_apply_ = nullptr;
  Histogram* h_stage_e2e_ = nullptr;
};

}  // namespace txrep::core

#endif  // TXREP_CORE_SERIAL_APPLIER_H_
