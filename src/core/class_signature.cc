#include "core/class_signature.h"

#include <functional>

#include "codec/kv_keys.h"

namespace txrep::core {

void ClassSignature::AddKey(std::string_view key) {
  const std::string_view table = codec::TableComponentOfKey(key);
  const size_t h = std::hash<std::string_view>{}(table);
  bits_ |= uint64_t{1} << (h % 64);
}

void ClassSignature::AddKeys(const std::unordered_set<std::string>& keys) {
  for (const std::string& key : keys) AddKey(key);
}

}  // namespace txrep::core
