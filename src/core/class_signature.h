#ifndef TXREP_CORE_CLASS_SIGNATURE_H_
#define TXREP_CORE_CLASS_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <unordered_set>

namespace txrep::core {

/// Transaction-class conflict pre-filter (the optimization the paper's §7
/// sketches as future work: "by classifying transactions into transaction
/// classes our algorithm would only evaluate conflicts for potentially
/// conflicting transactions", in the spirit of SDD-1's conflict classes).
///
/// A transaction's class is the set of *tables* its key sets touch, encoded
/// as a 64-bit Bloom signature (one hashed bit per table). Soundness: every
/// replica key — row object, hash-index object, B-link node — embeds its
/// table, so transactions whose table sets are disjoint cannot share a key
/// and therefore cannot conflict. Signature intersection is a one-cycle
/// upper bound on conflict possibility: zero overlap -> provably no
/// conflict, skip the exact key-set intersection; nonzero overlap (which
/// includes Bloom false positives) -> fall through to the exact check.
class ClassSignature {
 public:
  /// The empty class (conflicts with nothing).
  ClassSignature() : bits_(0) {}

  /// Adds the table owning `key` (any replica key shape).
  void AddKey(std::string_view key);

  /// Adds every key of a read/write set.
  void AddKeys(const std::unordered_set<std::string>& keys);

  /// True iff the two classes *may* share a table (must run the exact
  /// conflict check). False is definitive: no conflict possible.
  bool MayOverlap(const ClassSignature& other) const {
    return (bits_ & other.bits_) != 0;
  }

  uint64_t bits() const { return bits_; }
  bool empty() const { return bits_ == 0; }

 private:
  uint64_t bits_;
};

}  // namespace txrep::core

#endif  // TXREP_CORE_CLASS_SIGNATURE_H_
