#ifndef TXREP_CORE_BATCH_DISPATCHER_H_
#define TXREP_CORE_BATCH_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "common/histogram.h"
#include "common/status.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"

namespace txrep::core {

/// Knobs for the write-set coalescing dispatcher shared by every applier
/// (SerialApplier, TicketApplier, the TM's bottom pool, bootstrap tail
/// replay).
struct BatchDispatchOptions {
  /// Writes per MultiWrite chunk. When `adaptive` is set this is only the
  /// starting point; 1 degenerates to op-at-a-time through the batch API
  /// (the serial reference configuration in equivalence tests).
  int batch_size = 16;

  /// Let observed replica lag drive the chunk size: lag above
  /// `lag_high_micros` doubles it (amortize more round trips), lag below
  /// `lag_low_micros` halves it (smaller batches, lower per-txn latency),
  /// always clamped to [min_batch_size, max_batch_size].
  bool adaptive = false;
  int min_batch_size = 1;
  int max_batch_size = 64;
  int64_t lag_high_micros = 20'000;
  int64_t lag_low_micros = 2'000;
};

/// Chops a transaction's coalesced write set into chunks of the current
/// batch size and ships each chunk as one KvStore::MultiWrite call —
/// the apply path's single point of contact with the KV write API.
///
/// Chunks are dispatched in write-set order, so per-key order is exactly
/// what the write set says (each key appears at most once in a TxnBuffer
/// write set anyway). Dispatch is idempotent (PUT/DELETE are absolute), so
/// appliers retry a failed Dispatch wholesale.
///
/// Thread-safe: concurrent Dispatch/ObserveLag calls only share atomics and
/// registry instruments.
class BatchDispatcher {
 public:
  /// `metrics` (optional, must outlive the dispatcher) receives the chunk
  /// size histogram, the coalesced-ops counter and the replica-lag gauge.
  explicit BatchDispatcher(BatchDispatchOptions options = {},
                           obs::MetricsRegistry* metrics = nullptr);

  BatchDispatcher(const BatchDispatcher&) = delete;
  BatchDispatcher& operator=(const BatchDispatcher&) = delete;

  /// Applies `writes` to `store` in chunks of current_batch_size(). Stops at
  /// the first failing chunk and returns its status; already-applied chunks
  /// are harmless to re-apply (idempotence), so callers retry the whole call.
  Status Dispatch(kv::KvStore* store, std::span<const kv::KvWrite> writes);

  /// Feeds one end-to-end lag observation (DB commit -> applied, µs) to the
  /// adaptive controller and the replica-lag gauge.
  void ObserveLag(int64_t lag_micros);

  /// Current chunk size (fixed unless options().adaptive).
  int current_batch_size() const {
    return batch_size_.load(std::memory_order_relaxed);
  }

  const BatchDispatchOptions& options() const { return options_; }

 private:
  const BatchDispatchOptions options_;
  std::atomic<int> batch_size_;

  // Registry instruments (null when unobserved).
  Histogram* h_batch_size_ = nullptr;
  obs::Counter* c_coalesced_ = nullptr;
  obs::Gauge* g_lag_ = nullptr;
};

}  // namespace txrep::core

#endif  // TXREP_CORE_BATCH_DISPATCHER_H_
