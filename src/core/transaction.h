#ifndef TXREP_CORE_TRANSACTION_H_
#define TXREP_CORE_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/mutex.h"

#include "common/status.h"
#include "core/class_signature.h"
#include "core/txn_buffer.h"
#include "kv/kv_store.h"
#include "trace/context.h"

namespace txrep::core {

/// Transaction lifecycle states (paper §5).
enum class TxnState : uint8_t {
  kActive = 0,     // Executing (or awaiting commit evaluation / restart).
  kCommitted = 1,  // Passed conflict evaluation; buffer not yet applied.
  kCompleted = 2,  // Buffer applied to the key-value store.
};

/// Returns "ACTIVE", "COMMITTED" or "COMPLETED".
const char* TxnStateName(TxnState state);

/// One replica-side transaction flowing through the Transaction Manager:
/// either an update transaction shipped from the database log or an
/// interleaved read-only transaction. Shared between the thread pools and the
/// concurrency controller via shared_ptr; all mutable fields below are
/// protected by the TransactionManager's controller mutex unless noted.
class Transaction {
 public:
  /// The transaction body executes against a buffered KvStore view; for
  /// update transactions it is the Query Translator replaying the logged
  /// ops, for read-only transactions an arbitrary caller-supplied read
  /// program.
  using Body = std::function<Status(kv::KvStore*)>;

  Transaction(uint64_t seq, bool read_only, Body body)
      : seq_(seq), read_only_(read_only), body_(std::move(body)) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t seq() const { return seq_; }
  bool read_only() const { return read_only_; }
  const Body& body() const { return body_; }

  /// Blocks until the transaction reaches COMPLETED (or the TM fails); then
  /// returns its final status.
  Status Wait();

  /// Final status after Wait() returned.
  Status final_status() const;

  /// Number of restarts this transaction suffered (stable after Wait()).
  int restarts() const { return restart_count; }

  // --- fields below are owned by the TransactionManager ----------------

  /// Signals completion to Wait()ers. Called exactly once.
  void Finish(Status status);

  // analyze: lock-free(owned by one pipeline stage at a time; queue handoff orders access)
  TxnState state = TxnState::kActive;
  /// Logical stamp at (re-)execution start. Atomic because the executing
  /// thread stamps it lock-free while the GC pass reads it under the
  /// controller mutex.
  std::atomic<uint64_t> start_time{0};
  // analyze: lock-free(written at commit eval, read downstream; staged handoff orders access)
  uint64_t commit_time = 0;    // Logical stamp at commit.
  // analyze: lock-free(written by the completing stage only)
  uint64_t complete_time = 0;  // Logical stamp after apply.
  // analyze: lock-free(written during execute, read after handoff)
  Status execution_status;     // Outcome of the last body run.
  // analyze: lock-free(built during execute; read-only once the txn is queued)
  std::unique_ptr<TxnBuffer> buffer;  // Rebuilt on every (re-)execution.
  /// Table-class Bloom signature of the last execution's key sets (paper §7
  /// transaction-classes optimization; see ClassSignature).
  // analyze: lock-free(built during execute; read-only once the txn is queued)
  ClassSignature class_signature;
  /// Transactions parked on this one: restarted when it completes
  /// (Algorithm 1 line 11 / 25).
  // analyze: lock-free(guarded by the manager's commit-eval serialization, not a member mutex)
  std::vector<std::shared_ptr<Transaction>> restart_list;
  // analyze: lock-free(guarded by the manager's commit-eval serialization, not a member mutex)
  int restart_count = 0;

  /// Wall-clock stamps for pipeline stage latency (0 when unknown):
  /// db_commit_micros carries the original database's commit instant for
  /// shipped update transactions; submit_micros is stamped when the
  /// transaction entered the TM (the commit_eval span origin);
  /// enqueue_micros when the execution result enters the CommitReqPQ;
  /// commit_wall_micros when Algorithm 1 reaches the commit decision (the
  /// apply span origin).
  // analyze: lock-free(timestamp stamped by exactly one stage)
  int64_t db_commit_micros = 0;
  // analyze: lock-free(timestamp stamped by exactly one stage)
  int64_t submit_micros = 0;
  // analyze: lock-free(timestamp stamped by exactly one stage)
  int64_t enqueue_micros = 0;
  // analyze: lock-free(timestamp stamped by exactly one stage)
  int64_t commit_wall_micros = 0;

  /// Trace identity of the shipped update transaction (unsampled default
  /// for read-only transactions); set at submission, read-only afterwards.
  // analyze: lock-free(span context; written by the owning stage only)
  trace::TraceContext trace;

  /// Commit LSN of the shipped update transaction this one replays (0 for
  /// read-only transactions). The TM folds it into last_applied_lsn() when
  /// the transaction completes — the basis of checkpoint snapshot epochs.
  // analyze: lock-free(assigned once at log append, immutable afterwards)
  uint64_t lsn = 0;

 private:
  const uint64_t seq_;
  const bool read_only_;
  const Body body_;

  mutable check::Mutex done_mu_{"transaction.done"};
  check::CondVar done_cv_{&done_mu_};
  bool done_ TXREP_GUARDED_BY(done_mu_) = false;
  Status final_status_ TXREP_GUARDED_BY(done_mu_);
};

}  // namespace txrep::core

#endif  // TXREP_CORE_TRANSACTION_H_
