#include "core/serial_applier.h"

#include "common/clock.h"
#include "obs/names.h"

namespace txrep::core {

SerialApplier::SerialApplier(kv::KvStore* store,
                             const qt::QueryTranslator* translator,
                             obs::MetricsRegistry* metrics)
    : store_(store), translator_(translator) {
  if (metrics != nullptr) {
    h_stage_apply_ = metrics->GetHistogram(obs::kStageLatency,
                                           {{"stage", obs::kStageApply}});
    h_stage_e2e_ =
        metrics->GetHistogram(obs::kStageLatency, {{"stage", obs::kStageE2e}});
  }
}

Status SerialApplier::Apply(const rel::LogTransaction& txn) {
  const int64_t start = NowMicros();
  TXREP_RETURN_IF_ERROR(translator_->ApplyTransaction(store_, txn));
  ++applied_;
  if (txn.lsn != 0) {
    last_applied_lsn_.store(txn.lsn, std::memory_order_release);
  }
  const int64_t now = NowMicros();
  if (h_stage_apply_ != nullptr) h_stage_apply_->Record(now - start);
  if (h_stage_e2e_ != nullptr && txn.commit_micros != 0) {
    h_stage_e2e_->Record(now - txn.commit_micros);
  }
  return Status::OK();
}

Status SerialApplier::ApplyBatch(const std::vector<rel::LogTransaction>& batch) {
  for (const rel::LogTransaction& txn : batch) {
    TXREP_RETURN_IF_ERROR(Apply(txn));
  }
  return Status::OK();
}

}  // namespace txrep::core
