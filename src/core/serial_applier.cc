#include "core/serial_applier.h"

#include "common/clock.h"
#include "core/txn_buffer.h"
#include "obs/names.h"

namespace txrep::core {

SerialApplier::SerialApplier(kv::KvStore* store,
                             const qt::QueryTranslator* translator,
                             obs::MetricsRegistry* metrics,
                             BatchDispatchOptions dispatch,
                             trace::Tracer* tracer, trace::SloWatchdog* slo)
    : store_(store),
      translator_(translator),
      tracer_(tracer),
      slo_(slo),
      dispatcher_(dispatch, metrics) {
  if (metrics != nullptr) {
    h_stage_apply_ = metrics->GetHistogram(obs::kStageLatency,
                                           {{"stage", obs::kStageApply}});
    h_stage_e2e_ =
        metrics->GetHistogram(obs::kStageLatency, {{"stage", obs::kStageE2e}});
  }
}

Status SerialApplier::Apply(const rel::LogTransaction& txn) {
  const int64_t start = NowMicros();
  // Execute into a private buffer (reads go through to the store), then ship
  // the coalesced write set through the batch dispatcher. Serial replay makes
  // this trivially equivalent to direct application: nothing else writes the
  // store between execution and publish.
  TxnBuffer buffer(store_);
  TXREP_RETURN_IF_ERROR(translator_->ApplyTransaction(&buffer, txn));
  TXREP_RETURN_IF_ERROR(dispatcher_.Dispatch(store_, buffer.WriteBatch()));
  ++applied_;
  if (txn.lsn != 0) {
    last_applied_lsn_.store(txn.lsn, std::memory_order_release);
  }
  const int64_t now = NowMicros();
  if (h_stage_apply_ != nullptr) h_stage_apply_->Record(now - start);
  if (tracer_ != nullptr && txn.trace.sampled) {
    // Serial replay has no commit evaluation: the hand-off instant is the
    // apply span origin, all of it service.
    tracer_->RecordSpan(txn.trace, txn.lsn, trace::SpanStage::kApply, start,
                        now, 0);
    if (txn.commit_micros != 0) {
      tracer_->RecordSpan(txn.trace, txn.lsn, trace::SpanStage::kE2e,
                          txn.commit_micros, now, 0);
    }
  }
  if (txn.commit_micros != 0) {
    if (h_stage_e2e_ != nullptr) h_stage_e2e_->Record(now - txn.commit_micros);
    dispatcher_.ObserveLag(now - txn.commit_micros);
    if (slo_ != nullptr) slo_->ObserveLag(now - txn.commit_micros);
  }
  return Status::OK();
}

Status SerialApplier::ApplyBatch(const std::vector<rel::LogTransaction>& batch) {
  for (const rel::LogTransaction& txn : batch) {
    TXREP_RETURN_IF_ERROR(Apply(txn));
  }
  return Status::OK();
}

}  // namespace txrep::core
