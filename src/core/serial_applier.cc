#include "core/serial_applier.h"

namespace txrep::core {

Status SerialApplier::Apply(const rel::LogTransaction& txn) {
  TXREP_RETURN_IF_ERROR(translator_->ApplyTransaction(store_, txn));
  ++applied_;
  return Status::OK();
}

Status SerialApplier::ApplyBatch(const std::vector<rel::LogTransaction>& batch) {
  for (const rel::LogTransaction& txn : batch) {
    TXREP_RETURN_IF_ERROR(Apply(txn));
  }
  return Status::OK();
}

}  // namespace txrep::core
