#ifndef TXREP_CORE_TRANSACTION_MANAGER_H_
#define TXREP_CORE_TRANSACTION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "check/mutex.h"
#include "common/logical_clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/batch_dispatcher.h"
#include "core/transaction.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"
#include "qt/query_translator.h"
#include "rel/txlog.h"

namespace txrep::trace {
class Tracer;
class SloWatchdog;
}  // namespace txrep::trace

namespace txrep::core {

/// Tuning knobs of the Transaction Manager.
struct TmOptions {
  /// Threads converting transactions into buffered KV operations (the "top
  /// threadpool" of paper Fig. 8). Paper default: 20.
  int top_threads = 20;

  /// Threads applying committed buffers to the key-value store (the "bottom
  /// threadpool"). Paper default: 20.
  int bottom_threads = 20;

  /// CompletedTransactionList size that triggers the asynchronous removal
  /// pass (Algorithm 2's threshold).
  size_t completed_gc_threshold = 256;

  /// Transient store failures during apply are retried this many times.
  int max_apply_retries = 16;

  /// Backoff between apply retries, microseconds.
  int64_t apply_retry_backoff_micros = 200;

  /// Transient store failures during *execution* restart the transaction at
  /// most this many times before the TM declares failure.
  int max_execution_retries = 64;

  /// Enables the buffer's read-through cache (ablation knob).
  bool buffer_read_cache = true;

  /// Enables the transaction-classes conflict pre-filter (paper §7's
  /// proposed optimization): transactions whose table-class signatures are
  /// disjoint skip the exact key-set intersection entirely.
  bool enable_class_filter = true;

  /// Write-set coalescing on the bottom pool (see BatchDispatchOptions). The
  /// default is adaptive: the controller feeds the e2e lag of every
  /// completed transaction back into the chunk size.
  BatchDispatchOptions apply_batch{.adaptive = true};
};

/// Counters exposed by the TM (snapshot via TransactionManager::stats()).
/// Backed by the metrics registry: stats() reads the registry counters, so
/// this struct and the exported txrep_tm_* metrics always agree.
struct TmStats {
  int64_t submitted = 0;
  int64_t read_only_submitted = 0;
  int64_t committed = 0;
  int64_t completed = 0;
  /// Conflict events detected by Algorithm 1 == transaction restarts
  /// scheduled because of a conflict (the paper reports these as one number).
  int64_t conflicts = 0;
  /// All restarts (conflicts + transient execution errors).
  int64_t restarts = 0;
  int64_t apply_retries = 0;
  int64_t gc_runs = 0;
  int64_t gc_removed = 0;
  /// Pairwise conflict evaluations performed / skipped by the class filter.
  int64_t conflict_checks = 0;
  int64_t class_filter_skips = 0;
};

/// The Transaction Manager (paper §5, Fig. 8/9): applies the shipped update
/// transactions to the key-value store **concurrently** while guaranteeing a
/// result identical to serial execution in the execution-defined order, and
/// lets read-only transactions interleave at chosen sequence positions.
///
/// Pipeline:
///   Submit*() assigns the next sequence number and hands the transaction to
///   the *top pool*, which executes its body against a fresh TxnBuffer
///   (reads hit the store and are recorded; writes stay buffered). The
///   finished transaction enters the CommitReqPQ. A dedicated *controller
///   thread* evaluates transactions strictly in sequence order
///   (Algorithm 1):
///     - conflict with a COMMITTED predecessor  -> park on its restart list
///       (the controller stalls: the expected sequence does not advance);
///     - conflict with a COMPLETED predecessor that completed after this
///       transaction started -> restart immediately;
///     - otherwise commit: advance the expected sequence and hand the buffer
///       to the *bottom pool*, which applies it to the store, marks the
///       transaction COMPLETED and restarts everything parked on it.
///   An asynchronous pass (Algorithm 2) trims the completed list once it
///   exceeds `completed_gc_threshold`.
///
/// Conflict predicate (paper §5): two transactions conflict iff their
/// read/write key sets intersect as R/W, W/R or W/W — key sets include every
/// row object, hash-index object and B-link node the Query Translator
/// touched, so index maintenance conflicts are detected exactly like row
/// conflicts.
///
/// Thread-safe. Destruction waits for in-flight transactions.
class TransactionManager {
 public:
  /// `store` is the replica; `translator` turns logged ops into KV programs.
  /// Both must outlive the TM. `metrics` (optional, same lifetime rule)
  /// receives the txrep_tm_* counters, stage latency histograms and queue
  /// gauges; when absent the TM keeps a private registry so stats() still
  /// works. `tracer` (optional, same lifetime rule) receives the
  /// commit_eval / apply / e2e spans of sampled transactions; `slo`
  /// (optional, same lifetime rule) is fed every completed transaction's
  /// replica lag.
  TransactionManager(kv::KvStore* store, const qt::QueryTranslator* translator,
                     TmOptions options = {},
                     obs::MetricsRegistry* metrics = nullptr,
                     trace::Tracer* tracer = nullptr,
                     trace::SloWatchdog* slo = nullptr);

  ~TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Enqueues one logged update transaction at the next sequence position.
  /// Call in transaction-log order (the subscriber agent does).
  std::shared_ptr<Transaction> SubmitUpdate(rel::LogTransaction log_txn);

  /// Enqueues a read-only transaction at the next sequence position. `body`
  /// runs against a buffered view whose reads are conflict-checked, so the
  /// reads observe exactly the replica state at this sequence point.
  std::shared_ptr<Transaction> SubmitReadOnly(Transaction::Body body);

  /// Blocks until every submitted transaction completed. Returns the sticky
  /// failure status if the TM failed.
  Status WaitIdle();

  /// Quiescent barrier (checkpoint support): blocks *new* submissions, waits
  /// for every in-flight transaction to apply, runs `fn` at the quiescent
  /// point — the replica store then holds exactly the transaction prefix up
  /// to last_applied_lsn(), nothing more — and reopens submissions. `fn`
  /// runs outside the controller mutex (it may do heavy I/O); submissions
  /// stay parked in Submit* until the barrier releases them. Barriers
  /// serialize against each other. Returns `fn`'s status, or the TM's
  /// failure status if it failed before the barrier was reached.
  Status QuiesceBarrier(const std::function<Status()>& fn);

  /// Highest commit LSN among completed update transactions. Because the
  /// bottom pool applies concurrently, this is exact (equal to the applied
  /// *prefix* end) only when the TM is idle or quiesced — the only states
  /// checkpointing reads it in.
  uint64_t last_applied_lsn() const;

  /// Sticky failure status (OK while healthy).
  Status health() const;

  TmStats stats() const;
  const TmOptions& options() const { return options_; }

  /// The bottom pool's write-set dispatcher (e.g. to inspect the adaptive
  /// batch size in tests).
  const BatchDispatcher& dispatcher() const { return *dispatcher_; }

  /// Current size of the completed list (for GC tests/benches).
  size_t CompletedListSize() const;

  /// Audits the Algorithm 1 bookkeeping invariants (DESIGN.md §8): state/set
  /// agreement (committed ⊆ active, completed ∩ active = ∅), sequence bounds
  /// against expected_seq_, and commit-stamp monotonicity in sequence order —
  /// the in-flight face of the execution-defined-order guarantee. Returns the
  /// first violation found. TXREP_DEBUG_CHECKS builds run this automatically
  /// at every commit evaluation / completion and abort on violation.
  Status CheckInvariants() const;

 private:
  using TxnPtr = std::shared_ptr<Transaction>;

  struct SeqGreater {
    bool operator()(const TxnPtr& a, const TxnPtr& b) const {
      return a->seq() > b->seq();
    }
  };

  TxnPtr SubmitInternal(bool read_only, Transaction::Body body,
                        int64_t db_commit_micros = 0, uint64_t lsn = 0,
                        trace::TraceContext trace = {});

  /// Top-pool task: (re-)executes the body into a fresh buffer, then
  /// enqueues the commit request.
  void ExecuteTask(const TxnPtr& txn);

  /// Controller thread: Algorithm 1 main loop.
  void ControllerLoop();

  /// Evaluates the head transaction.
  void EvaluateLocked(const TxnPtr& txn) TXREP_REQUIRES(mu_);

  /// True iff the two transactions' key sets conflict (R/W, W/R or W/W).
  static bool Conflicts(const Transaction& a, const Transaction& b);

  /// Conflicts() behind the class-signature pre-filter; updates filter
  /// statistics.
  bool ConflictsFiltered(const Transaction& a, const Transaction& b)
      TXREP_REQUIRES(mu_);

  /// Schedules a fresh execution of `txn`.
  void RestartLocked(const TxnPtr& txn) TXREP_REQUIRES(mu_);

  /// CheckInvariants() body.
  Status CheckInvariantsLocked() const TXREP_REQUIRES(mu_);

  /// No-op unless TXREP_DEBUG_CHECKS: runs CheckInvariantsLocked and aborts
  /// on violation (fail fast — a broken invariant means replay equivalence
  /// is already lost).
  void DebugCheckInvariantsLocked() const TXREP_REQUIRES(mu_);

  /// Bottom-pool task: applies the buffer, completes the transaction,
  /// restarts its parked dependents.
  void ApplyTask(const TxnPtr& txn);

  /// Algorithm 2: asynchronous removal from the completed list.
  void GcTask();

  /// Marks the TM failed and wakes everyone.
  void FailLocked(const Status& status) TXREP_REQUIRES(mu_);

  /// Resolves all instruments from `metrics`. Called once from the ctor,
  /// before any thread starts.
  void WireMetrics(obs::MetricsRegistry* metrics);

  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  kv::KvStore* store_;                      // Not owned.
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  const qt::QueryTranslator* translator_;   // Not owned.
  const TmOptions options_;
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  trace::Tracer* tracer_;      // Not owned; may be null.
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  trace::SloWatchdog* slo_;    // Not owned; may be null.
  // analyze: lock-free(LogicalClock is internally synchronized (atomic))
  LogicalClock clock_;

  /// Private fallback registry when the caller injects none (declared before
  /// the pools/threads so instruments outlive every user).
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_submitted_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_read_only_submitted_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_committed_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_completed_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_conflicts_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_restarts_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_apply_retries_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_gc_runs_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_gc_removed_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_conflict_checks_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_class_filter_skips_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_stage_execute_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_stage_commit_eval_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_stage_apply_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_stage_e2e_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_txn_restarts_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_pq_depth_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_top_backlog_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_bottom_backlog_ = nullptr;

  /// Bottom-pool write-set dispatcher (created after WireMetrics so it can
  /// resolve its instruments from the same registry).
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<BatchDispatcher> dispatcher_;

  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<ThreadPool> top_pool_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<ThreadPool> bottom_pool_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<ThreadPool> gc_pool_;  // Single thread: async Algorithm 2.

  mutable check::Mutex mu_{"tm.mu"};
  check::CondVar cv_{&mu_};
  std::priority_queue<TxnPtr, std::vector<TxnPtr>, SeqGreater> commit_req_pq_
      TXREP_GUARDED_BY(mu_);
  /// Next sequence number to hand out.
  uint64_t next_seq_ TXREP_GUARDED_BY(mu_) = 1;
  /// Next sequence the controller will evaluate.
  uint64_t expected_seq_ TXREP_GUARDED_BY(mu_) = 1;
  /// COMMITTED, not yet applied.
  std::map<uint64_t, TxnPtr> committed_ TXREP_GUARDED_BY(mu_);
  /// COMPLETED (until GC).
  std::map<uint64_t, TxnPtr> completed_ TXREP_GUARDED_BY(mu_);
  /// Submitted, not yet completed.
  std::map<uint64_t, TxnPtr> active_ TXREP_GUARDED_BY(mu_);
  bool gc_scheduled_ TXREP_GUARDED_BY(mu_) = false;
  bool stopping_ TXREP_GUARDED_BY(mu_) = false;
  /// A quiescent barrier is draining: Submit* parks until it clears.
  bool quiescing_ TXREP_GUARDED_BY(mu_) = false;
  /// Max commit LSN over completed update transactions (see accessor).
  uint64_t last_applied_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  Status health_ TXREP_GUARDED_BY(mu_) = Status::OK();

  // analyze: lock-free(thread handle; started in ctor, joined in dtor only)
  std::thread controller_;
};

}  // namespace txrep::core

#endif  // TXREP_CORE_TRANSACTION_MANAGER_H_
