#include "core/transaction.h"

namespace txrep::core {

const char* TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kActive:
      return "ACTIVE";
    case TxnState::kCommitted:
      return "COMMITTED";
    case TxnState::kCompleted:
      return "COMPLETED";
  }
  return "?";
}

Status Transaction::Wait() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return done_; });
  return final_status_;
}

Status Transaction::final_status() const {
  std::lock_guard<std::mutex> lock(done_mu_);
  return final_status_;
}

void Transaction::Finish(Status status) {
  std::lock_guard<std::mutex> lock(done_mu_);
  if (done_) return;
  done_ = true;
  final_status_ = std::move(status);
  done_cv_.notify_all();
}

}  // namespace txrep::core
