#include "core/transaction.h"

namespace txrep::core {

const char* TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kActive:
      return "ACTIVE";
    case TxnState::kCommitted:
      return "COMMITTED";
    case TxnState::kCompleted:
      return "COMPLETED";
  }
  return "?";
}

Status Transaction::Wait() {
  check::MutexLock lock(&done_mu_);
  while (!done_) done_cv_.Wait();
  return final_status_;
}

Status Transaction::final_status() const {
  check::MutexLock lock(&done_mu_);
  return final_status_;
}

void Transaction::Finish(Status status) {
  check::MutexLock lock(&done_mu_);
  if (done_) return;
  done_ = true;
  final_status_ = std::move(status);
  done_cv_.NotifyAll();
}

}  // namespace txrep::core
