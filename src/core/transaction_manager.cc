#include "core/transaction_manager.h"


#include <cstdlib>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"
#include "trace/slo.h"
#include "trace/tracer.h"

namespace txrep::core {

TransactionManager::TransactionManager(kv::KvStore* store,
                                       const qt::QueryTranslator* translator,
                                       TmOptions options,
                                       obs::MetricsRegistry* metrics,
                                       trace::Tracer* tracer,
                                       trace::SloWatchdog* slo)
    : store_(store),
      translator_(translator),
      options_(options),
      tracer_(tracer),
      slo_(slo) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  WireMetrics(metrics);
  dispatcher_ = std::make_unique<BatchDispatcher>(options_.apply_batch, metrics);
  top_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(options_.top_threads), "tm-top");
  bottom_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(options_.bottom_threads), "tm-bottom");
  gc_pool_ = std::make_unique<ThreadPool>(1, "tm-gc");
  controller_ = std::thread([this] { ControllerLoop(); });
}

void TransactionManager::WireMetrics(obs::MetricsRegistry* metrics) {
  c_submitted_ = metrics->GetCounter(obs::kTmSubmitted);
  c_read_only_submitted_ = metrics->GetCounter(obs::kTmReadOnlySubmitted);
  c_committed_ = metrics->GetCounter(obs::kTmCommitted);
  c_completed_ = metrics->GetCounter(obs::kTmCompleted);
  c_conflicts_ = metrics->GetCounter(obs::kTmConflicts);
  c_restarts_ = metrics->GetCounter(obs::kTmRestarts);
  c_apply_retries_ = metrics->GetCounter(obs::kTmApplyRetries);
  c_gc_runs_ = metrics->GetCounter(obs::kTmGcRuns);
  c_gc_removed_ = metrics->GetCounter(obs::kTmGcRemoved);
  c_conflict_checks_ = metrics->GetCounter(obs::kTmConflictChecks);
  c_class_filter_skips_ = metrics->GetCounter(obs::kTmClassFilterSkips);
  h_stage_execute_ = metrics->GetHistogram(obs::kStageLatency,
                                           {{"stage", obs::kStageExecute}});
  h_stage_commit_eval_ = metrics->GetHistogram(
      obs::kStageLatency, {{"stage", obs::kStageCommitEval}});
  h_stage_apply_ =
      metrics->GetHistogram(obs::kStageLatency, {{"stage", obs::kStageApply}});
  h_stage_e2e_ =
      metrics->GetHistogram(obs::kStageLatency, {{"stage", obs::kStageE2e}});
  h_txn_restarts_ = metrics->GetHistogram(obs::kTmTxnRestarts);
  g_pq_depth_ =
      metrics->GetGauge(obs::kQueueDepth, {{"queue", obs::kQueueCommitReqPq}});
  g_top_backlog_ =
      metrics->GetGauge(obs::kQueueDepth, {{"queue", obs::kQueueTmTop}});
  g_bottom_backlog_ =
      metrics->GetGauge(obs::kQueueDepth, {{"queue", obs::kQueueTmBottom}});
}

TransactionManager::~TransactionManager() {
  // analyze: discard(destructor drain; nothing to return a timeout to)
  (void)WaitIdle();
  {
    check::MutexLock lock(&mu_);
    stopping_ = true;
    cv_.NotifyAll();
  }
  controller_.join();
  top_pool_->Shutdown();
  bottom_pool_->Shutdown();
  gc_pool_->Shutdown();
}

std::shared_ptr<Transaction> TransactionManager::SubmitUpdate(
    rel::LogTransaction log_txn) {
  const int64_t db_commit_micros = log_txn.commit_micros;
  const uint64_t lsn = log_txn.lsn;
  const trace::TraceContext trace = log_txn.trace;
  auto payload = std::make_shared<rel::LogTransaction>(std::move(log_txn));
  return SubmitInternal(
      /*read_only=*/false,
      [this, payload](kv::KvStore* view) {
        return translator_->ApplyTransaction(view, *payload);
      },
      db_commit_micros, lsn, trace);
}

std::shared_ptr<Transaction> TransactionManager::SubmitReadOnly(
    Transaction::Body body) {
  return SubmitInternal(/*read_only=*/true, std::move(body));
}

TransactionManager::TxnPtr TransactionManager::SubmitInternal(
    bool read_only, Transaction::Body body, int64_t db_commit_micros,
    uint64_t lsn, trace::TraceContext trace) {
  TxnPtr txn;
  {
    check::MutexLock lock(&mu_);
    // A quiescent barrier owns the sequence space while it drains; new
    // arrivals park here so the snapshot ends at an exact txn boundary.
    while (quiescing_ && health_.ok()) cv_.Wait();
    txn = std::make_shared<Transaction>(next_seq_++, read_only,
                                        std::move(body));
    txn->db_commit_micros = db_commit_micros;
    txn->lsn = lsn;
    txn->trace = trace;
    txn->submit_micros = NowMicros();
    if (!health_.ok()) {
      txn->Finish(health_);
      return txn;
    }
    active_[txn->seq()] = txn;
    c_submitted_->Increment();
    if (read_only) c_read_only_submitted_->Increment();
  }
  top_pool_->Submit([this, txn] { ExecuteTask(txn); });
  g_top_backlog_->Set(static_cast<int64_t>(top_pool_->QueueDepth()));
  return txn;
}

void TransactionManager::ExecuteTask(const TxnPtr& txn) {
  {
    check::MutexLock lock(&mu_);
    if (!health_.ok()) {
      txn->Finish(health_);
      return;
    }
  }
  // Stamp the start strictly before the first read (Algorithm 1 relies on
  // start/complete ordering to decide which completed writers might have
  // been missed).
  txn->start_time = clock_.Tick();
  const int64_t exec_start = NowMicros();
  auto buffer =
      std::make_unique<TxnBuffer>(store_, options_.buffer_read_cache);
  Status status = txn->body()(buffer.get());
  h_stage_execute_->Record(NowMicros() - exec_start);
  // Derive the transaction-class signature from the key sets (paper §7).
  ClassSignature signature;
  signature.AddKeys(buffer->read_set());
  signature.AddKeys(buffer->write_set());
  {
    check::MutexLock lock(&mu_);
    txn->buffer = std::move(buffer);
    txn->execution_status = std::move(status);
    txn->class_signature = signature;
    txn->enqueue_micros = NowMicros();
    commit_req_pq_.push(txn);
    g_pq_depth_->Set(static_cast<int64_t>(commit_req_pq_.size()));
    cv_.NotifyAll();
  }
}

void TransactionManager::ControllerLoop() {
  check::MutexLock lock(&mu_);
  for (;;) {
    while (!(stopping_ || !health_.ok() ||
             (!commit_req_pq_.empty() &&
              commit_req_pq_.top()->seq() == expected_seq_))) {
      cv_.Wait();
    }
    if (stopping_ || !health_.ok()) return;
    TxnPtr txn = commit_req_pq_.top();
    commit_req_pq_.pop();
    g_pq_depth_->Set(static_cast<int64_t>(commit_req_pq_.size()));
    EvaluateLocked(txn);
  }
}

bool TransactionManager::Conflicts(const Transaction& a, const Transaction& b) {
  const auto& a_reads = a.buffer->read_set();
  const auto& a_writes = a.buffer->write_set();
  const auto& b_reads = b.buffer->read_set();
  const auto& b_writes = b.buffer->write_set();

  auto intersects = [](const std::unordered_set<std::string>& x,
                       const std::unordered_set<std::string>& y) {
    const auto& small = x.size() <= y.size() ? x : y;
    const auto& large = x.size() <= y.size() ? y : x;
    for (const std::string& key : small) {
      if (large.contains(key)) return true;
    }
    return false;
  };
  // R/W, W/R and W/W conflicts (paper §5).
  return intersects(a_reads, b_writes) || intersects(a_writes, b_writes) ||
         intersects(a_writes, b_reads);
}

bool TransactionManager::ConflictsFiltered(const Transaction& a,
                                           const Transaction& b) {
  if (options_.enable_class_filter &&
      !a.class_signature.MayOverlap(b.class_signature)) {
    c_class_filter_skips_->Increment();
    return false;  // Disjoint table classes: provably conflict-free.
  }
  c_conflict_checks_->Increment();
  return Conflicts(a, b);
}

void TransactionManager::RestartLocked(const TxnPtr& txn) {
  c_restarts_->Increment();
  ++txn->restart_count;
  txn->state = TxnState::kActive;
  top_pool_->SubmitUrgent([this, txn] { ExecuteTask(txn); });
}

void TransactionManager::EvaluateLocked(const TxnPtr& txn) {
  DebugCheckInvariantsLocked();
  // Lines 9-14: conflicts with committed (not yet applied) predecessors.
  // Their writes are invisible, so this transaction may have read stale
  // data; park it until the first conflicting predecessor completes. The
  // expected sequence stays put — the controller stalls, as in the paper.
  for (auto& [seq, tj] : committed_) {
    if (ConflictsFiltered(*txn, *tj)) {
      c_conflicts_->Increment();
      c_restarts_->Increment();
      ++txn->restart_count;
      tj->restart_list.push_back(txn);
      return;
    }
  }
  // Lines 15-22: conflicts with completed predecessors that completed after
  // this transaction started (concurrent ones). Restart immediately.
  for (auto& [seq, tj] : completed_) {
    if (txn->start_time < tj->complete_time && ConflictsFiltered(*txn, *tj)) {
      c_conflicts_->Increment();
      RestartLocked(txn);
      return;
    }
  }
  // No conflict explains an execution failure, so it is either a transient
  // condition (retry by restarting) or a real one. Unavailable = transient
  // store error; Aborted = an optimistic index traversal hit a torn or
  // still-in-flight structure (B-link version-latch protocol) — both resolve
  // against the fresher snapshot a restart re-executes on.
  if (!txn->execution_status.ok()) {
    if ((txn->execution_status.IsUnavailable() ||
         txn->execution_status.IsAborted()) &&
        txn->restarts() < options_.max_execution_retries) {
      RestartLocked(txn);
      return;
    }
    if (txn->read_only()) {
      // A failed read-only transaction (bad query, planner error, ...) has
      // no writes and therefore cannot leave the replica inconsistent: fail
      // just this transaction, keep its sequence slot as a no-op, and let
      // the pipeline continue.
      txn->state = TxnState::kCompleted;
      txn->complete_time = clock_.Tick();
      expected_seq_ = txn->seq() + 1;
      active_.erase(txn->seq());
      c_completed_->Increment();
      txn->Finish(txn->execution_status);
      cv_.NotifyAll();
      return;
    }
    // A failed *update* transaction is fatal: applying successors without it
    // would violate the execution-defined order.
    FailLocked(Status(txn->execution_status.code(),
                      "transaction " + std::to_string(txn->seq()) +
                          " failed: " + txn->execution_status.message()));
    return;
  }
  // Lines 23-25: commit.
  txn->state = TxnState::kCommitted;
  txn->commit_time = clock_.Tick();
  committed_[txn->seq()] = txn;
  expected_seq_ = txn->seq() + 1;
  c_committed_->Increment();
  const int64_t commit_wall = NowMicros();
  txn->commit_wall_micros = commit_wall;
  if (txn->enqueue_micros != 0) {
    h_stage_commit_eval_->Record(commit_wall - txn->enqueue_micros);
  }
  if (tracer_ != nullptr && txn->trace.sampled) {
    // Sink hand-off -> commit decision; the wait in the CommitReqPQ for the
    // controller is the queue share, (re-)execution the service share.
    tracer_->RecordSpan(txn->trace, txn->lsn, trace::SpanStage::kCommitEval,
                        txn->submit_micros, commit_wall,
                        txn->enqueue_micros != 0
                            ? commit_wall - txn->enqueue_micros
                            : 0);
  }
  bottom_pool_->Submit([this, txn] { ApplyTask(txn); });
  g_bottom_backlog_->Set(static_cast<int64_t>(bottom_pool_->QueueDepth()));
}

void TransactionManager::ApplyTask(const TxnPtr& txn) {
  // Publish the buffered writes through the batch dispatcher, tolerating
  // transient store failures (re-dispatching is idempotent: PUT/DELETE are
  // absolute).
  const int64_t apply_start = NowMicros();
  Status status = Status::OK();
  if (txn->buffer->WriteCount() > 0) {
    const kv::KvWriteBatch writes = txn->buffer->WriteBatch();
    for (int attempt = 0;; ++attempt) {
      status = dispatcher_->Dispatch(store_, writes);
      if (status.ok() || !status.IsUnavailable()) break;
      if (attempt >= options_.max_apply_retries) {
        TXREP_LOG(kWarn) << "apply of transaction " << txn->seq()
                         << " exhausted " << options_.max_apply_retries
                         << " retries: " << status.ToString();
        break;
      }
      c_apply_retries_->Increment();
      SleepForMicros(options_.apply_retry_backoff_micros);
    }
  }
  const int64_t apply_done = NowMicros();
  h_stage_apply_->Record(apply_done - apply_start);
  if (status.ok() && tracer_ != nullptr && txn->trace.sampled) {
    // Commit decision -> replica-visible; waiting for a bottom-pool thread
    // is the queue share. commit_wall_micros was stamped before this task
    // was submitted, so reading it lock-free here is ordered.
    const int64_t commit_wall = txn->commit_wall_micros != 0
                                    ? txn->commit_wall_micros
                                    : apply_start;
    tracer_->RecordSpan(txn->trace, txn->lsn, trace::SpanStage::kApply,
                        commit_wall, apply_done, apply_start - commit_wall);
    if (txn->db_commit_micros != 0) {
      tracer_->RecordSpan(txn->trace, txn->lsn, trace::SpanStage::kE2e,
                          txn->db_commit_micros, apply_done, 0);
    }
  }

  std::vector<TxnPtr> to_restart;
  bool run_gc = false;
  {
    check::MutexLock lock(&mu_);
    if (!status.ok()) {
      FailLocked(Status(status.code(), "apply of transaction " +
                                           std::to_string(txn->seq()) +
                                           " failed: " + status.message()));
      return;
    }
    txn->complete_time = clock_.Tick();
    txn->state = TxnState::kCompleted;
    committed_.erase(txn->seq());
    completed_[txn->seq()] = txn;
    active_.erase(txn->seq());
    // Bottom-pool completions land out of order, so track the max; it equals
    // the applied-prefix end whenever active_ is empty (idle / quiesced).
    if (txn->lsn > last_applied_lsn_) last_applied_lsn_ = txn->lsn;
    c_completed_->Increment();
    h_txn_restarts_->Record(txn->restart_count);
    if (txn->db_commit_micros != 0) {
      const int64_t lag = NowMicros() - txn->db_commit_micros;
      h_stage_e2e_->Record(lag);
      dispatcher_->ObserveLag(lag);
      if (slo_ != nullptr) slo_->ObserveLag(lag);
    }
    to_restart = std::move(txn->restart_list);
    txn->restart_list.clear();
    for (const TxnPtr& parked : to_restart) {
      parked->state = TxnState::kActive;
      top_pool_->SubmitUrgent([this, parked] { ExecuteTask(parked); });
    }
    if (completed_.size() > options_.completed_gc_threshold && !gc_scheduled_) {
      gc_scheduled_ = true;
      run_gc = true;
    }
    DebugCheckInvariantsLocked();
    cv_.NotifyAll();
  }
  txn->Finish(Status::OK());
  if (run_gc) {
    gc_pool_->Submit([this] { GcTask(); });
  }
}

void TransactionManager::GcTask() {
  // Algorithm 2: remove every completed transaction no active transaction
  // could still conflict-test against (no active T_j started before its
  // completion).
  check::MutexLock lock(&mu_);
  c_gc_runs_->Increment();
  for (auto it = completed_.begin(); it != completed_.end();) {
    bool needed = false;
    for (const auto& [seq, active] : active_) {
      // start_time == 0 means "not yet started". Such a transaction will be
      // stamped from the monotonic clock *after* this entry's completion
      // stamp, so its line-16 test `start < complete` can never hold against
      // this entry — it does not need it.
      const uint64_t start = active->start_time;
      if (start != 0 && start < it->second->complete_time) {
        needed = true;
        break;
      }
    }
    if (needed) {
      ++it;
    } else {
      it = completed_.erase(it);
      c_gc_removed_->Increment();
    }
  }
  gc_scheduled_ = false;
}

void TransactionManager::FailLocked(const Status& status) {
  health_ = status;
  TXREP_LOG(kError) << "transaction manager failed: " << status.ToString();
  // Finish everything still in flight so waiters unblock.
  for (auto& [seq, txn] : active_) txn->Finish(status);
  active_.clear();
  cv_.NotifyAll();
}

Status TransactionManager::WaitIdle() {
  // Idle means: every submitted transaction completed (active empty) and the
  // pools drained. The controller can only stall while a committed
  // transaction is applying, so waiting on active_ is sufficient.
  check::MutexLock lock(&mu_);
  while (!active_.empty() && health_.ok()) cv_.Wait();
  return health_;
}

Status TransactionManager::QuiesceBarrier(
    const std::function<Status()>& fn) {
  {
    check::MutexLock lock(&mu_);
    // Serialize barriers: only one drain owns quiescing_ at a time.
    while (quiescing_ && health_.ok()) cv_.Wait();
    if (!health_.ok()) return health_;
    quiescing_ = true;
    while (!active_.empty() && health_.ok()) cv_.Wait();
    if (!health_.ok()) {
      quiescing_ = false;
      cv_.NotifyAll();
      return health_;
    }
  }
  // Quiescent: nothing in flight, and Submit* parks on quiescing_. The
  // callback (checkpoint I/O) runs outside the controller mutex.
  Status status = fn();
  {
    check::MutexLock lock(&mu_);
    quiescing_ = false;
    cv_.NotifyAll();
  }
  return status;
}

uint64_t TransactionManager::last_applied_lsn() const {
  check::MutexLock lock(&mu_);
  return last_applied_lsn_;
}

Status TransactionManager::health() const {
  check::MutexLock lock(&mu_);
  return health_;
}

TmStats TransactionManager::stats() const {
  // Registry-backed: each field reads its counter, so stats() and the
  // exported metrics are the same numbers. Exact once writers quiesced
  // (e.g. after WaitIdle()).
  TmStats stats;
  stats.submitted = c_submitted_->Value();
  stats.read_only_submitted = c_read_only_submitted_->Value();
  stats.committed = c_committed_->Value();
  stats.completed = c_completed_->Value();
  stats.conflicts = c_conflicts_->Value();
  stats.restarts = c_restarts_->Value();
  stats.apply_retries = c_apply_retries_->Value();
  stats.gc_runs = c_gc_runs_->Value();
  stats.gc_removed = c_gc_removed_->Value();
  stats.conflict_checks = c_conflict_checks_->Value();
  stats.class_filter_skips = c_class_filter_skips_->Value();
  return stats;
}

size_t TransactionManager::CompletedListSize() const {
  check::MutexLock lock(&mu_);
  return completed_.size();
}

Status TransactionManager::CheckInvariants() const {
  check::MutexLock lock(&mu_);
  return CheckInvariantsLocked();
}

Status TransactionManager::CheckInvariantsLocked() const {
  auto violation = [](const std::string& what) {
    return Status::Internal("TM invariant violated: " + what);
  };
  if (expected_seq_ > next_seq_) {
    return violation("expected_seq " + std::to_string(expected_seq_) +
                     " ran past next_seq " + std::to_string(next_seq_));
  }
  // A commit request at the head of the PQ must never be from the past:
  // sequences below expected_seq_ were already evaluated and committed.
  if (!commit_req_pq_.empty() &&
      commit_req_pq_.top()->seq() < expected_seq_) {
    return violation("commit request for already-evaluated seq " +
                     std::to_string(commit_req_pq_.top()->seq()) +
                     " (expected_seq " + std::to_string(expected_seq_) + ")");
  }
  for (const auto& [seq, txn] : committed_) {
    if (txn->state != TxnState::kCommitted) {
      return violation("committed-set txn " + std::to_string(seq) +
                       " in state " + TxnStateName(txn->state));
    }
    if (seq >= expected_seq_) {
      return violation("committed txn " + std::to_string(seq) +
                       " >= expected_seq " + std::to_string(expected_seq_));
    }
    if (txn->commit_time == 0) {
      return violation("committed txn " + std::to_string(seq) +
                       " missing commit stamp");
    }
    if (txn->buffer == nullptr) {
      return violation("committed txn " + std::to_string(seq) +
                       " has no buffer to apply");
    }
    if (active_.find(seq) == active_.end()) {
      return violation("committed txn " + std::to_string(seq) +
                       " not tracked as active");
    }
  }
  // Algorithm 1 commits strictly in sequence order, so commit stamps must be
  // monotone in seq across everything that passed evaluation — this is the
  // in-flight shadow of the execution-defined-order guarantee.
  uint64_t prev_commit = 0;
  uint64_t prev_seq = 0;
  auto check_commit_order = [&](uint64_t seq, const TxnPtr& txn) {
    if (txn->commit_time <= prev_commit) {
      return violation("commit stamps out of order: txn " +
                       std::to_string(seq) + " committed at " +
                       std::to_string(txn->commit_time) + " <= txn " +
                       std::to_string(prev_seq) + " at " +
                       std::to_string(prev_commit));
    }
    prev_commit = txn->commit_time;
    prev_seq = seq;
    return Status::OK();
  };
  for (const auto& [seq, txn] : completed_) {
    if (txn->state != TxnState::kCompleted) {
      return violation("completed-set txn " + std::to_string(seq) +
                       " in state " + TxnStateName(txn->state));
    }
    if (txn->complete_time <= txn->commit_time) {
      return violation("completed txn " + std::to_string(seq) +
                       " completed before committing");
    }
    if (active_.find(seq) != active_.end()) {
      return violation("completed txn " + std::to_string(seq) +
                       " still tracked as active");
    }
    Status order = check_commit_order(seq, txn);
    if (!order.ok()) return order;
  }
  // completed_ and committed_ are disjoint seq ranges? Not necessarily
  // contiguous (GC trims the middle), but commit order must continue to hold
  // across the boundary: every committed (unapplied) txn committed after
  // every completed one still on the list with a smaller seq.
  for (const auto& [seq, txn] : committed_) {
    if (seq > prev_seq) {
      Status order = check_commit_order(seq, txn);
      if (!order.ok()) return order;
    }
  }
  return Status::OK();
}

void TransactionManager::DebugCheckInvariantsLocked() const {
#ifdef TXREP_DEBUG_CHECKS
  Status status = CheckInvariantsLocked();
  if (!status.ok()) {
    TXREP_LOG(kError) << status.ToString();
    std::abort();
  }
#endif
}

}  // namespace txrep::core
