#ifndef TXREP_CORE_TICKET_APPLIER_H_
#define TXREP_CORE_TICKET_APPLIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/mutex.h"

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/batch_dispatcher.h"
#include "kv/kv_store.h"
#include "qt/query_translator.h"
#include "rel/txlog.h"
#include "trace/tracer.h"

namespace txrep::core {

/// Tuning knobs for the ticket-based applier.
struct TicketApplierOptions {
  /// Worker threads executing transactions once their locks are granted.
  int threads = 20;

  /// Write-set coalescing (see BatchDispatchOptions): each transaction
  /// executes into a private TxnBuffer under its table locks and the
  /// coalesced write set ships as MultiWrite chunks.
  BatchDispatchOptions dispatch;
};

/// Counters exposed by the ticket applier.
struct TicketApplierStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  /// Transactions that had to block waiting for a smaller ticket.
  int64_t lock_waits = 0;
};

/// The remote-backup replay scheme of Polyzois & García-Molina (the paper's
/// §2 comparator): transactions carry *tickets* in log order, and a
/// two-phase-locking protocol grants each lock strictly in ticket order —
/// "no lock is granted to a transaction unless all the transactions with the
/// smaller ticket that requested the same lock have been granted".
///
/// Granularity: locks are taken on *tables* (the statically pre-declarable
/// conflict classes of a logged transaction — row-level sets would require
/// the very translation reads whose ordering is at stake). Transactions over
/// disjoint table sets replay concurrently; transactions sharing any table
/// serialize in ticket order, which — since every replica key embeds its
/// table — reproduces the execution-defined order exactly.
///
/// Contrast with the TxRep TM (optimistic, restart-based): ticket 2PL never
/// restarts but blocks pessimistically, and it gets no intra-table
/// concurrency at all. The `bench/baseline_comparison` harness quantifies
/// the difference.
class TicketApplier {
 public:
  /// `store` and `translator` must outlive the applier. `tracer` (optional,
  /// same lifetime rule) receives apply / e2e spans of sampled transactions
  /// (lock waiting is the apply queue share).
  TicketApplier(kv::KvStore* store, const qt::QueryTranslator* translator,
                TicketApplierOptions options = {},
                trace::Tracer* tracer = nullptr);

  ~TicketApplier();

  TicketApplier(const TicketApplier&) = delete;
  TicketApplier& operator=(const TicketApplier&) = delete;

  /// Enqueues one logged transaction; tickets are assigned in call order
  /// (call in log order). Returns immediately.
  void Submit(rel::LogTransaction txn);

  /// Blocks until everything submitted has been applied; returns the sticky
  /// failure status.
  Status WaitIdle();

  TicketApplierStats stats() const;

 private:
  /// FIFO-by-ticket table lock manager. A ticket may hold its tables only
  /// when it is the smallest registered ticket on every one of them.
  class LockManager {
   public:
    /// Declares interest (called in ticket order, at submission).
    void Register(uint64_t ticket, const std::vector<std::string>& tables);

    /// Blocks until `ticket` is first in line on all `tables`. Returns true
    /// if it had to wait.
    bool AcquireAll(uint64_t ticket, const std::vector<std::string>& tables);

    /// Releases and wakes waiters.
    void Release(uint64_t ticket, const std::vector<std::string>& tables);

   private:
    bool GrantedLocked(uint64_t ticket,
                       const std::vector<std::string>& tables) const
        TXREP_REQUIRES(mu_);

    check::Mutex mu_{"ticket.locks"};
    check::CondVar cv_{&mu_};
    std::map<std::string, std::set<uint64_t>> queues_ TXREP_GUARDED_BY(mu_);
  };

  void ApplyTask(uint64_t ticket,
                 std::shared_ptr<rel::LogTransaction> txn,
                 std::shared_ptr<std::vector<std::string>> tables);

  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  kv::KvStore* store_;                     // Not owned.
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  const qt::QueryTranslator* translator_;  // Not owned.
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  trace::Tracer* tracer_;                  // Not owned; may be null.
  // analyze: lock-free(BatchDispatcher is internally synchronized)
  BatchDispatcher dispatcher_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<ThreadPool> pool_;
  // analyze: lock-free(LockManager owns its own (keyed) mutexes)
  LockManager locks_;

  mutable check::Mutex mu_{"ticket.mu"};
  check::CondVar idle_cv_{&mu_};
  uint64_t next_ticket_ TXREP_GUARDED_BY(mu_) = 1;
  int64_t in_flight_ TXREP_GUARDED_BY(mu_) = 0;
  Status health_ TXREP_GUARDED_BY(mu_) = Status::OK();
  TicketApplierStats stats_ TXREP_GUARDED_BY(mu_);
};

}  // namespace txrep::core

#endif  // TXREP_CORE_TICKET_APPLIER_H_
