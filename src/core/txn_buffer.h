#ifndef TXREP_CORE_TXN_BUFFER_H_
#define TXREP_CORE_TXN_BUFFER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "common/status.h"
#include "kv/kv_store.h"

namespace txrep::core {

/// The per-transaction exclusive buffer of the paper (§5): during the
/// execution phase, "all the changes that are being done by a transaction are
/// stored in the transaction buffer and the transaction does not affect data
/// in the key-value store".
///
/// Implements the KvStore interface so that the Query Translator (and the
/// B-link tree underneath it) runs unchanged against it:
///  - GET reads the buffer first; on miss it reads the base store, records
///    the key in the *read set*, and caches the result (including negative
///    results) for future accesses — the paper's read-through buffer.
///  - PUT / DELETE only touch the buffer and record the key in the
///    *write set*; DELETE is a tombstone.
///
/// After execution, the read/write sets drive conflict detection
/// (Algorithm 1) and ApplyTo() publishes the writes (bottom thread pool).
///
/// Not thread-safe: a buffer belongs to exactly one executing transaction.
class TxnBuffer : public kv::KvStore {
 public:
  /// `read_cache` disables the read-through cache when false (ablation:
  /// every GET of an unwritten key then hits the base store again, but the
  /// read set is recorded identically).
  explicit TxnBuffer(kv::KvStore* base, bool read_cache = true);

  TxnBuffer(const TxnBuffer&) = delete;
  TxnBuffer& operator=(const TxnBuffer&) = delete;

  // KvStore interface (buffered semantics).
  Status Put(const kv::Key& key, const kv::Value& value) override;
  Result<kv::Value> Get(const kv::Key& key) override;
  Status Delete(const kv::Key& key) override;
  bool Contains(const kv::Key& key) override;
  size_t Size() override;
  kv::StoreDump Dump() override;

  /// Keys read from the base store (i.e., not satisfied by own writes).
  const std::unordered_set<std::string>& read_set() const { return read_set_; }

  /// Keys written (PUT or DELETE) by this transaction.
  const std::unordered_set<std::string>& write_set() const {
    return write_set_;
  }

  /// Number of buffered write entries.
  size_t WriteCount() const { return writes_.size(); }

  /// The coalesced write set as an ordered batch (sorted-key order; one
  /// entry per key — later writes to a key already replaced earlier ones in
  /// the buffer). This is what the batched apply path dispatches.
  kv::KvWriteBatch WriteBatch() const;

  /// Publishes the buffered writes to `target` in sorted-key order as one
  /// MultiWrite batch (deterministic; idempotent, so safe to re-run after a
  /// transient error).
  Status ApplyTo(kv::KvStore* target) const;

 private:
  struct WriteEntry {
    bool tombstone = false;
    kv::Value value;
  };

  kv::KvStore* base_;  // Not owned.
  const bool read_cache_enabled_;

  // Writes override cache; keys ordered for deterministic ApplyTo.
  std::map<kv::Key, WriteEntry> writes_;
  // Read-through cache: nullopt = cached NotFound.
  std::unordered_map<kv::Key, std::optional<kv::Value>> read_cache_;
  std::unordered_set<std::string> read_set_;
  std::unordered_set<std::string> write_set_;
};

}  // namespace txrep::core

#endif  // TXREP_CORE_TXN_BUFFER_H_
