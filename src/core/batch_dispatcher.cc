#include "core/batch_dispatcher.h"

#include <algorithm>

#include "obs/names.h"

namespace txrep::core {

BatchDispatcher::BatchDispatcher(BatchDispatchOptions options,
                                 obs::MetricsRegistry* metrics)
    : options_(options),
      batch_size_(std::clamp(options.batch_size, options.min_batch_size,
                             options.max_batch_size)) {
  if (metrics == nullptr) return;
  h_batch_size_ = metrics->GetHistogram(obs::kApplyBatchSize);
  c_coalesced_ = metrics->GetCounter(obs::kApplyCoalescedOps);
  g_lag_ = metrics->GetGauge(obs::kReplicaLag);
}

Status BatchDispatcher::Dispatch(kv::KvStore* store,
                                 std::span<const kv::KvWrite> writes) {
  const size_t chunk_size =
      static_cast<size_t>(std::max(1, current_batch_size()));
  size_t chunks = 0;
  for (size_t offset = 0; offset < writes.size(); offset += chunk_size) {
    const std::span<const kv::KvWrite> chunk =
        writes.subspan(offset, std::min(chunk_size, writes.size() - offset));
    ++chunks;
    if (h_batch_size_ != nullptr) {
      h_batch_size_->Record(static_cast<int64_t>(chunk.size()));
    }
    TXREP_RETURN_IF_ERROR(store->MultiWrite(chunk));
  }
  if (c_coalesced_ != nullptr && writes.size() > chunks) {
    // Round trips saved vs op-at-a-time: ops shipped minus calls made.
    c_coalesced_->Increment(static_cast<int64_t>(writes.size() - chunks));
  }
  return Status::OK();
}

void BatchDispatcher::ObserveLag(int64_t lag_micros) {
  if (g_lag_ != nullptr) g_lag_->Set(lag_micros);
  if (!options_.adaptive) return;
  const int current = batch_size_.load(std::memory_order_relaxed);
  int next = current;
  if (lag_micros > options_.lag_high_micros) {
    next = std::min(current * 2, options_.max_batch_size);
  } else if (lag_micros < options_.lag_low_micros) {
    next = std::max(current / 2, options_.min_batch_size);
  }
  if (next != current) {
    batch_size_.store(next, std::memory_order_relaxed);
  }
}

}  // namespace txrep::core
