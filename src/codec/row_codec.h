#ifndef TXREP_CODEC_ROW_CODEC_H_
#define TXREP_CODEC_ROW_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/value.h"

namespace txrep::codec {

/// Serializes a full row (the KV object value of a tuple, paper Fig. 6) as
/// varint arity + encoded values.
std::string EncodeRow(const rel::Row& row);

/// Inverse of EncodeRow; Corruption on malformed input.
Result<rel::Row> DecodeRow(std::string_view bytes);

/// Serializes a posting list — the value of a hash-index KV object
/// (paper Fig. 7): the sorted set of row keys whose indexed attribute equals
/// the index key's value. Sorted so replica state dumps are canonical.
std::string EncodePostings(const std::vector<std::string>& row_keys);

/// Inverse of EncodePostings; Corruption on malformed input.
Result<std::vector<std::string>> DecodePostings(std::string_view bytes);

}  // namespace txrep::codec

#endif  // TXREP_CODEC_ROW_CODEC_H_
