#ifndef TXREP_CODEC_SCHEMA_CODEC_H_
#define TXREP_CODEC_SCHEMA_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rel/schema.h"

namespace txrep::codec {

/// Wire format for a relational catalog (table schemas + declared indexes).
/// The replication handshake ships the publisher's catalog to a remote
/// replica process so it can build its own QueryTranslator without sharing an
/// address space (DESIGN.md §13). Layout:
///   varint #tables, per table:
///     length-prefixed name, varint #columns,
///     per column: length-prefixed name + 1 type byte,
///     varint pk column index,
///     varint #hash-index columns + column indexes,
///     varint #range-index columns + column indexes,
///   trailing FNV-1a checksum over everything before it.
std::string EncodeCatalog(const rel::Catalog& catalog);

/// Inverse of EncodeCatalog; Corruption on malformed input.
Result<rel::Catalog> DecodeCatalog(std::string_view bytes);

}  // namespace txrep::codec

#endif  // TXREP_CODEC_SCHEMA_CODEC_H_
