#include "codec/kv_keys.h"

#include "codec/value_codec.h"

namespace txrep::codec {

std::string RowKey(std::string_view table, const rel::Value& pk) {
  return KeyEscapeIdentifier(table) + "_" + KeyEncodeValue(pk);
}

std::string HashIndexKey(std::string_view table, std::string_view column,
                         const rel::Value& value) {
  return KeyEscapeIdentifier(table) + "_" + KeyEscapeIdentifier(column) + "_" +
         KeyEncodeValue(value);
}

std::string BlinkNodeKey(std::string_view table, std::string_view column,
                         uint64_t node_id) {
  return "!b_" + KeyEscapeIdentifier(table) + "_" +
         KeyEscapeIdentifier(column) + "_" + std::to_string(node_id);
}

std::string BlinkMetaKey(std::string_view table, std::string_view column) {
  return "!bmeta_" + KeyEscapeIdentifier(table) + "_" +
         KeyEscapeIdentifier(column);
}

std::string_view TableComponentOfKey(std::string_view key) {
  if (key.rfind("!bmeta_", 0) == 0) {
    key.remove_prefix(7);
  } else if (key.rfind("!b_", 0) == 0) {
    key.remove_prefix(3);
  }
  const size_t pos = key.find('_');
  return pos == std::string_view::npos ? key : key.substr(0, pos);
}

}  // namespace txrep::codec
