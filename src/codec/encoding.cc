#include "codec/encoding.h"

#include <cstring>

namespace txrep::codec {

void AppendFixed64(std::string& dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst.append(buf, 8);
}

bool GetFixed64(std::string_view* src, uint64_t* value) {
  if (src->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*src)[i])) << (8 * i);
  }
  *value = v;
  src->remove_prefix(8);
  return true;
}

void AppendFixed32(std::string& dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst.append(buf, 4);
}

bool GetFixed32(std::string_view* src, uint32_t* value) {
  if (src->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*src)[i])) << (8 * i);
  }
  *value = v;
  src->remove_prefix(4);
  return true;
}

void AppendVarint64(std::string& dst, uint64_t value) {
  while (value >= 0x80) {
    dst.push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst.push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view* src, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (src->empty()) return false;
    const auto byte = static_cast<unsigned char>((*src)[0]);
    src->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // > 10 bytes: corrupt.
}

void AppendLengthPrefixed(std::string& dst, std::string_view bytes) {
  AppendVarint64(dst, bytes.size());
  dst.append(bytes.data(), bytes.size());
}

bool GetLengthPrefixed(std::string_view* src, std::string_view* bytes) {
  uint64_t len = 0;
  if (!GetVarint64(src, &len)) return false;
  if (src->size() < len) return false;
  *bytes = src->substr(0, len);
  src->remove_prefix(len);
  return true;
}

void AppendDouble(std::string& dst, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendFixed64(dst, bits);
}

bool GetDouble(std::string_view* src, double* value) {
  uint64_t bits = 0;
  if (!GetFixed64(src, &bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace txrep::codec
