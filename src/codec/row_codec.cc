#include "codec/row_codec.h"

#include <algorithm>

#include "codec/encoding.h"
#include "codec/value_codec.h"

namespace txrep::codec {

std::string EncodeRow(const rel::Row& row) {
  std::string out;
  AppendVarint64(out, row.size());
  for (const rel::Value& v : row) AppendValue(out, v);
  return out;
}

Result<rel::Row> DecodeRow(std::string_view bytes) {
  uint64_t arity = 0;
  if (!GetVarint64(&bytes, &arity)) {
    return Status::Corruption("row codec: bad arity varint");
  }
  rel::Row row;
  row.reserve(arity);
  for (uint64_t i = 0; i < arity; ++i) {
    rel::Value v;
    if (!GetValue(&bytes, &v)) {
      return Status::Corruption("row codec: bad value at position " +
                                std::to_string(i));
    }
    row.push_back(std::move(v));
  }
  if (!bytes.empty()) {
    return Status::Corruption("row codec: trailing bytes");
  }
  return row;
}

std::string EncodePostings(const std::vector<std::string>& row_keys) {
  std::vector<std::string> sorted = row_keys;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string out;
  AppendVarint64(out, sorted.size());
  for (const std::string& key : sorted) AppendLengthPrefixed(out, key);
  return out;
}

Result<std::vector<std::string>> DecodePostings(std::string_view bytes) {
  uint64_t count = 0;
  if (!GetVarint64(&bytes, &count)) {
    return Status::Corruption("postings codec: bad count varint");
  }
  std::vector<std::string> keys;
  keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view key;
    if (!GetLengthPrefixed(&bytes, &key)) {
      return Status::Corruption("postings codec: bad entry " +
                                std::to_string(i));
    }
    keys.emplace_back(key);
  }
  if (!bytes.empty()) {
    return Status::Corruption("postings codec: trailing bytes");
  }
  return keys;
}

}  // namespace txrep::codec
