#ifndef TXREP_CODEC_VALUE_CODEC_H_
#define TXREP_CODEC_VALUE_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rel/value.h"

namespace txrep::codec {

/// Appends the binary form of a value: 1 type byte + payload
/// (zigzag-varint for INT, fixed64 bits for DOUBLE, length-prefixed bytes
/// for STRING, nothing for NULL).
void AppendValue(std::string& dst, const rel::Value& value);

/// Consumes one encoded value from the front of `*src`.
bool GetValue(std::string_view* src, rel::Value* value);

/// Canonical *textual* encoding used inside key-value keys (row keys, index
/// keys). Properties:
///  - injective for values of the same type (the per-context requirement:
///    a PK column or an indexed column has a single type);
///  - emits only characters in [A-Za-z0-9.%-]; in particular never '_',
///    which the key layout uses as its component separator (paper §4.1:
///    "ITEM_1", "ITEM_COST_100").
/// INTs render as decimal, DOUBLEs as shortest round-trip decimal, STRINGs
/// percent-escape every byte outside [A-Za-z0-9].
std::string KeyEncodeValue(const rel::Value& value);

/// Percent-escapes an identifier (table/column name) the same way STRINGs
/// are escaped, so names containing '_' (e.g. ORDER_LINE) cannot be confused
/// with key separators.
std::string KeyEscapeIdentifier(std::string_view name);

}  // namespace txrep::codec

#endif  // TXREP_CODEC_VALUE_CODEC_H_
