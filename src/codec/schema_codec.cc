#include "codec/schema_codec.h"

#include <vector>

#include "codec/encoding.h"

namespace txrep::codec {

namespace {

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("catalog codec: ") + what);
}

}  // namespace

std::string EncodeCatalog(const rel::Catalog& catalog) {
  std::string out;
  const std::vector<std::string> names = catalog.TableNames();
  AppendVarint64(out, names.size());
  for (const std::string& name : names) {
    const rel::TableSchema& schema = **catalog.GetTable(name);
    AppendLengthPrefixed(out, schema.table_name());
    AppendVarint64(out, schema.num_columns());
    for (const rel::Column& column : schema.columns()) {
      AppendLengthPrefixed(out, column.name);
      out.push_back(static_cast<char>(column.type));
    }
    AppendVarint64(out, schema.pk_index());
    AppendVarint64(out, schema.hash_index_columns().size());
    for (size_t index : schema.hash_index_columns()) {
      AppendVarint64(out, index);
    }
    AppendVarint64(out, schema.range_index_columns().size());
    for (size_t index : schema.range_index_columns()) {
      AppendVarint64(out, index);
    }
  }
  AppendFixed64(out, Fnv1a(out));
  return out;
}

Result<rel::Catalog> DecodeCatalog(std::string_view bytes) {
  if (bytes.size() < 8) return Corrupt("short buffer");
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  std::string_view checksum_view = bytes.substr(bytes.size() - 8);
  uint64_t checksum = 0;
  if (!GetFixed64(&checksum_view, &checksum) || checksum != Fnv1a(body)) {
    return Corrupt("checksum mismatch");
  }

  std::string_view src = body;
  uint64_t num_tables = 0;
  if (!GetVarint64(&src, &num_tables)) return Corrupt("table count");
  rel::Catalog catalog;
  for (uint64_t t = 0; t < num_tables; ++t) {
    std::string_view name;
    if (!GetLengthPrefixed(&src, &name)) return Corrupt("table name");
    uint64_t num_columns = 0;
    if (!GetVarint64(&src, &num_columns)) return Corrupt("column count");
    std::vector<rel::Column> columns;
    columns.reserve(num_columns);
    for (uint64_t c = 0; c < num_columns; ++c) {
      std::string_view column_name;
      if (!GetLengthPrefixed(&src, &column_name)) return Corrupt("column name");
      if (src.empty()) return Corrupt("column type");
      const auto type = static_cast<uint8_t>(src[0]);
      src.remove_prefix(1);
      if (type > static_cast<uint8_t>(rel::ValueType::kString)) {
        return Corrupt("unknown column type");
      }
      columns.push_back(rel::Column{std::string(column_name),
                                    static_cast<rel::ValueType>(type)});
    }
    uint64_t pk_index = 0;
    if (!GetVarint64(&src, &pk_index)) return Corrupt("pk index");
    if (pk_index >= columns.size()) return Corrupt("pk index out of range");
    const std::string pk_column = columns[pk_index].name;
    TXREP_ASSIGN_OR_RETURN(
        rel::TableSchema schema,
        rel::TableSchema::Create(std::string(name), columns, pk_column));
    uint64_t num_hash = 0;
    if (!GetVarint64(&src, &num_hash)) return Corrupt("hash index count");
    for (uint64_t i = 0; i < num_hash; ++i) {
      uint64_t column = 0;
      if (!GetVarint64(&src, &column)) return Corrupt("hash index column");
      if (column >= columns.size()) return Corrupt("hash index out of range");
      TXREP_RETURN_IF_ERROR(schema.AddHashIndex(columns[column].name));
    }
    uint64_t num_range = 0;
    if (!GetVarint64(&src, &num_range)) return Corrupt("range index count");
    for (uint64_t i = 0; i < num_range; ++i) {
      uint64_t column = 0;
      if (!GetVarint64(&src, &column)) return Corrupt("range index column");
      if (column >= columns.size()) return Corrupt("range index out of range");
      TXREP_RETURN_IF_ERROR(schema.AddRangeIndex(columns[column].name));
    }
    TXREP_RETURN_IF_ERROR(catalog.AddTable(std::move(schema)));
  }
  if (!src.empty()) return Corrupt("trailing bytes");
  return catalog;
}

}  // namespace txrep::codec
