#ifndef TXREP_CODEC_ENCODING_H_
#define TXREP_CODEC_ENCODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace txrep::codec {

/// Low-level binary primitives (RocksDB-style): all Append* functions append
/// to `dst`; all Get* functions consume from the front of `*src` and return
/// false on underflow/corruption.

void AppendFixed64(std::string& dst, uint64_t value);
bool GetFixed64(std::string_view* src, uint64_t* value);

/// Little-endian fixed-width 32-bit value (wire-frame body lengths).
void AppendFixed32(std::string& dst, uint32_t value);
bool GetFixed32(std::string_view* src, uint32_t* value);

void AppendVarint64(std::string& dst, uint64_t value);
bool GetVarint64(std::string_view* src, uint64_t* value);

/// Varint length followed by raw bytes.
void AppendLengthPrefixed(std::string& dst, std::string_view bytes);
bool GetLengthPrefixed(std::string_view* src, std::string_view* bytes);

/// Doubles are stored as their IEEE-754 bit pattern (fixed64).
void AppendDouble(std::string& dst, double value);
bool GetDouble(std::string_view* src, double* value);

/// ZigZag transform so small negative int64s stay small varints.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

/// FNV-1a 64-bit hash — the project's record/file checksum (disk node log
/// records, checkpoint snapshot files and manifests all use it).
uint64_t Fnv1a(std::string_view bytes);

}  // namespace txrep::codec

#endif  // TXREP_CODEC_ENCODING_H_
