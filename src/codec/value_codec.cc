#include "codec/value_codec.h"

#include <cstdio>

#include "codec/encoding.h"

namespace txrep::codec {

namespace {
constexpr char kTagNull = 0;
constexpr char kTagInt = 1;
constexpr char kTagDouble = 2;
constexpr char kTagString = 3;

bool IsKeySafe(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9');
}

void PercentEscapeTo(std::string_view in, std::string& out) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  for (char c : in) {
    if (IsKeySafe(c)) {
      out.push_back(c);
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xf]);
    }
  }
}
}  // namespace

void AppendValue(std::string& dst, const rel::Value& value) {
  switch (value.type()) {
    case rel::ValueType::kNull:
      dst.push_back(kTagNull);
      return;
    case rel::ValueType::kInt64:
      dst.push_back(kTagInt);
      AppendVarint64(dst, ZigZagEncode(value.AsInt()));
      return;
    case rel::ValueType::kDouble:
      dst.push_back(kTagDouble);
      AppendDouble(dst, value.AsDouble());
      return;
    case rel::ValueType::kString:
      dst.push_back(kTagString);
      AppendLengthPrefixed(dst, value.AsString());
      return;
  }
}

bool GetValue(std::string_view* src, rel::Value* value) {
  if (src->empty()) return false;
  const char tag = (*src)[0];
  src->remove_prefix(1);
  switch (tag) {
    case kTagNull:
      *value = rel::Value::Null();
      return true;
    case kTagInt: {
      uint64_t raw = 0;
      if (!GetVarint64(src, &raw)) return false;
      *value = rel::Value::Int(ZigZagDecode(raw));
      return true;
    }
    case kTagDouble: {
      double d = 0;
      if (!GetDouble(src, &d)) return false;
      *value = rel::Value::Real(d);
      return true;
    }
    case kTagString: {
      std::string_view bytes;
      if (!GetLengthPrefixed(src, &bytes)) return false;
      *value = rel::Value::Str(std::string(bytes));
      return true;
    }
    default:
      return false;
  }
}

std::string KeyEncodeValue(const rel::Value& value) {
  switch (value.type()) {
    case rel::ValueType::kNull:
      return "%00";  // Cannot collide with any escaped string byte sequence
                     // alone because strings escape per byte; NULL never
                     // reaches PK positions anyway.
    case rel::ValueType::kInt64: {
      // '-' is key-safe by our charset and unambiguous in decimal position.
      return std::to_string(value.AsInt());
    }
    case rel::ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", value.AsDouble());
      // Replace '+' (exponent sign) which is not key-safe: escape pass.
      std::string out;
      PercentEscapeTo(buf, out);
      return out;
    }
    case rel::ValueType::kString: {
      std::string out;
      PercentEscapeTo(value.AsString(), out);
      return out;
    }
  }
  return "";
}

std::string KeyEscapeIdentifier(std::string_view name) {
  std::string out;
  PercentEscapeTo(name, out);
  return out;
}

}  // namespace txrep::codec
