#include "codec/log_codec.h"

#include "codec/encoding.h"
#include "codec/row_codec.h"
#include "codec/value_codec.h"

namespace txrep::codec {

namespace {

/// Bit layout of the per-transaction trace flag byte; the remaining bits are
/// reserved and must decode as zero.
constexpr uint8_t kTraceSampledFlag = 0x01;

}  // namespace

void AppendLogTransaction(std::string& dst, const rel::LogTransaction& txn) {
  AppendVarint64(dst, txn.lsn);
  AppendVarint64(dst, ZigZagEncode(txn.commit_micros));
  AppendVarint64(dst, txn.trace.trace_id);
  dst.push_back(
      static_cast<char>(txn.trace.sampled ? kTraceSampledFlag : 0));
  AppendVarint64(dst, txn.ops.size());
  for (const rel::LogOp& op : txn.ops) {
    dst.push_back(static_cast<char>(op.type));
    AppendLengthPrefixed(dst, op.table);
    AppendValue(dst, op.pk);
    AppendLengthPrefixed(dst, EncodeRow(op.after));
  }
}

Result<rel::LogTransaction> GetLogTransaction(std::string_view* src) {
  rel::LogTransaction txn;
  uint64_t num_ops = 0;
  uint64_t commit_raw = 0;
  if (!GetVarint64(src, &txn.lsn) || !GetVarint64(src, &commit_raw) ||
      !GetVarint64(src, &txn.trace.trace_id) || src->empty()) {
    return Status::Corruption("log codec: bad transaction header");
  }
  const auto trace_flags = static_cast<uint8_t>((*src)[0]);
  src->remove_prefix(1);
  if ((trace_flags & ~kTraceSampledFlag) != 0) {
    return Status::Corruption("log codec: bad trace flags " +
                              std::to_string(trace_flags));
  }
  txn.trace.sampled = (trace_flags & kTraceSampledFlag) != 0;
  if (!GetVarint64(src, &num_ops)) {
    return Status::Corruption("log codec: bad transaction header");
  }
  txn.commit_micros = ZigZagDecode(commit_raw);
  txn.ops.reserve(num_ops);
  for (uint64_t i = 0; i < num_ops; ++i) {
    if (src->empty()) return Status::Corruption("log codec: truncated op");
    rel::LogOp op;
    const auto raw_type = static_cast<uint8_t>((*src)[0]);
    src->remove_prefix(1);
    if (raw_type > static_cast<uint8_t>(rel::LogOpType::kDelete)) {
      return Status::Corruption("log codec: bad op type " +
                                std::to_string(raw_type));
    }
    op.type = static_cast<rel::LogOpType>(raw_type);
    std::string_view table;
    if (!GetLengthPrefixed(src, &table)) {
      return Status::Corruption("log codec: bad table name");
    }
    op.table.assign(table);
    if (!GetValue(src, &op.pk)) {
      return Status::Corruption("log codec: bad primary key");
    }
    std::string_view row_bytes;
    if (!GetLengthPrefixed(src, &row_bytes)) {
      return Status::Corruption("log codec: bad row bytes");
    }
    TXREP_ASSIGN_OR_RETURN(op.after, DecodeRow(row_bytes));
    txn.ops.push_back(std::move(op));
  }
  return txn;
}

std::string EncodeLogBatch(const std::vector<rel::LogTransaction>& batch) {
  std::string out;
  AppendVarint64(out, batch.size());
  for (const rel::LogTransaction& txn : batch) AppendLogTransaction(out, txn);
  AppendFixed64(out, Fnv1a(out));
  return out;
}

Result<std::vector<rel::LogTransaction>> DecodeLogBatch(
    std::string_view bytes) {
  if (bytes.size() < 8) {
    return Status::Corruption("log codec: batch shorter than its checksum");
  }
  std::string_view tail = bytes.substr(bytes.size() - 8);
  uint64_t stored = 0;
  GetFixed64(&tail, &stored);
  bytes.remove_suffix(8);
  if (stored != Fnv1a(bytes)) {
    return Status::Corruption("log codec: batch checksum mismatch");
  }
  uint64_t count = 0;
  if (!GetVarint64(&bytes, &count)) {
    return Status::Corruption("log codec: bad batch count");
  }
  std::vector<rel::LogTransaction> batch;
  batch.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TXREP_ASSIGN_OR_RETURN(rel::LogTransaction txn, GetLogTransaction(&bytes));
    batch.push_back(std::move(txn));
  }
  if (!bytes.empty()) {
    return Status::Corruption("log codec: trailing bytes");
  }
  return batch;
}

Result<LogBatchStats> ScanLogBatch(std::string_view bytes) {
  if (bytes.size() < 8) {
    return Status::Corruption("log codec: batch shorter than its checksum");
  }
  std::string_view tail = bytes.substr(bytes.size() - 8);
  uint64_t stored = 0;
  GetFixed64(&tail, &stored);
  bytes.remove_suffix(8);
  if (stored != Fnv1a(bytes)) {
    return Status::Corruption("log codec: batch checksum mismatch");
  }
  uint64_t count = 0;
  if (!GetVarint64(&bytes, &count)) {
    return Status::Corruption("log codec: bad batch count");
  }
  LogBatchStats stats;
  stats.txn_count = count;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t lsn = 0;
    uint64_t skipped = 0;
    uint64_t num_ops = 0;
    if (!GetVarint64(&bytes, &lsn) || !GetVarint64(&bytes, &skipped) ||
        !GetVarint64(&bytes, &skipped) || bytes.empty()) {
      return Status::Corruption("log codec: bad transaction header");
    }
    bytes.remove_prefix(1);  // Trace flag byte.
    if (!GetVarint64(&bytes, &num_ops)) {
      return Status::Corruption("log codec: bad transaction header");
    }
    if (i == 0 || lsn < stats.min_lsn) stats.min_lsn = lsn;
    if (lsn > stats.max_lsn) stats.max_lsn = lsn;
    for (uint64_t op = 0; op < num_ops; ++op) {
      if (bytes.empty()) return Status::Corruption("log codec: truncated op");
      bytes.remove_prefix(1);  // Op type byte.
      std::string_view skipped_bytes;
      rel::Value pk;
      if (!GetLengthPrefixed(&bytes, &skipped_bytes) ||  // Table name.
          !GetValue(&bytes, &pk) ||
          !GetLengthPrefixed(&bytes, &skipped_bytes)) {  // Row bytes.
        return Status::Corruption("log codec: bad op body");
      }
    }
  }
  if (!bytes.empty()) {
    return Status::Corruption("log codec: trailing bytes");
  }
  return stats;
}

}  // namespace txrep::codec
