#ifndef TXREP_CODEC_LOG_CODEC_H_
#define TXREP_CODEC_LOG_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/txlog.h"

namespace txrep::codec {

/// Wire format of one logged transaction, used inside replication messages
/// shipped by the middleware (paper Appendix A). Layout:
///   varint lsn, zigzag-varint commit_micros, varint trace_id,
///   1 trace-flag byte (bit 0 = sampled, rest reserved zero), varint #ops,
///   per op: 1 type byte, length-prefixed table, encoded pk, encoded row
///           (row arity 0 for DELETE).
void AppendLogTransaction(std::string& dst, const rel::LogTransaction& txn);

/// Consumes one transaction from the front of `*src`.
Result<rel::LogTransaction> GetLogTransaction(std::string_view* src);

/// Serializes a whole batch (varint count + transactions + trailing FNV-1a
/// checksum over everything before it, so every flipped or lost byte of a
/// replication message is rejected on decode).
std::string EncodeLogBatch(const std::vector<rel::LogTransaction>& batch);

/// Inverse of EncodeLogBatch; Corruption on malformed input.
Result<std::vector<rel::LogTransaction>> DecodeLogBatch(std::string_view bytes);

/// Shape of an encoded batch without the cost of materializing it.
struct LogBatchStats {
  uint64_t min_lsn = 0;
  uint64_t max_lsn = 0;
  size_t txn_count = 0;
};

/// Validates the checksum and walks the batch headers, skipping op bodies
/// (no row decode, no op vectors). The wire endpoint uses this to stamp
/// dense-LSN ranges onto frames without paying for a second full decode.
Result<LogBatchStats> ScanLogBatch(std::string_view bytes);

}  // namespace txrep::codec

#endif  // TXREP_CODEC_LOG_CODEC_H_
