#ifndef TXREP_CODEC_KV_KEYS_H_
#define TXREP_CODEC_KV_KEYS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "rel/value.h"

namespace txrep::codec {

/// Key layout of relational data in the key-value store (paper §4.1):
///
///   row key         TABLE_pk                      e.g. ITEM_1
///   hash-index key  TABLE_COLUMN_value            e.g. ITEM_I%5FCOST_100
///   B-link node key !b_TABLE_COLUMN_nodeId        (range index, §4.2)
///   B-link meta key !bmeta_TABLE_COLUMN           (tree anchor/root pointer)
///
/// Identifiers and string values are percent-escaped (see KeyEscapeIdentifier)
/// so that '_' only ever appears as a separator and '!' only as the reserved
/// internal prefix; the layout is therefore injective.

/// Key of the KV object holding the tuple with primary key `pk`.
std::string RowKey(std::string_view table, const rel::Value& pk);

/// Key of the hash-index posting object for `column == value`.
std::string HashIndexKey(std::string_view table, std::string_view column,
                         const rel::Value& value);

/// Key of a B-link tree node object.
std::string BlinkNodeKey(std::string_view table, std::string_view column,
                         uint64_t node_id);

/// Key of a B-link tree's metadata object (root pointer, id counter).
std::string BlinkMetaKey(std::string_view table, std::string_view column);

/// Extracts the (escaped) table component of any replica key — row key,
/// hash-index key or B-link node/meta key. Every key the Query Translator
/// produces embeds its table, which is what makes table-level *transaction
/// classes* (paper §7) sound: transactions over disjoint table sets can
/// never share a key.
std::string_view TableComponentOfKey(std::string_view key);

}  // namespace txrep::codec

#endif  // TXREP_CODEC_KV_KEYS_H_
