#include "recov/checkpoint.h"

#include <algorithm>
#include <utility>

#include "codec/encoding.h"
#include "common/clock.h"
#include "kv/kv_cluster.h"
#include "obs/names.h"
#include "recov/cursor.h"
#include "recov/io.h"

namespace txrep::recov {

CheckpointWriter::CheckpointWriter(std::string checkpoint_dir,
                                   obs::MetricsRegistry* metrics)
    : dir_(std::move(checkpoint_dir)) {
  if (metrics != nullptr) {
    checkpoints_ = metrics->GetCounter(obs::kRecovCheckpoints);
    failures_ = metrics->GetCounter(obs::kRecovCheckpointFailures);
    bytes_gauge_ = metrics->GetGauge(obs::kRecovCheckpointBytes);
    epoch_gauge_ = metrics->GetGauge(obs::kRecovCheckpointEpoch);
    latency_ = metrics->GetHistogram(obs::kRecovCheckpointLatency);
  }
}

Result<CheckpointStats> CheckpointWriter::Write(
    uint64_t snapshot_epoch, const std::vector<kv::KvStore*>& shards) {
  const Stopwatch watch;
  auto fail = [this](Status status) -> Status {
    if (failures_ != nullptr) failures_->Increment();
    return status;
  };

  TXREP_RETURN_IF_ERROR(EnsureDir(dir_));
  const std::string manifest_name = ManifestFileName(snapshot_epoch);
  if (ReadFileToString(dir_ + "/" + manifest_name).ok()) {
    return fail(Status::InvalidArgument("checkpoint epoch " +
                                        std::to_string(snapshot_epoch) +
                                        " already exists in " + dir_));
  }

  CheckpointManifest manifest;
  manifest.snapshot_epoch = snapshot_epoch;
  CheckpointStats stats;
  stats.epoch = snapshot_epoch;

  for (size_t i = 0; i < shards.size(); ++i) {
    if (faults_.fail_after_files >= 0 &&
        static_cast<size_t>(faults_.fail_after_files) == i) {
      return fail(Status::Unavailable(
          "injected crash after " + std::to_string(i) + " snapshot files"));
    }
    const std::string contents = EncodeSnapshotPayload(shards[i]->Dump());
    SnapshotFileInfo info;
    info.name = SnapshotFileName(snapshot_epoch, static_cast<int>(i));
    info.bytes = contents.size();
    info.records = shards[i]->Size();
    info.checksum = codec::Fnv1a(contents);
    TXREP_RETURN_IF_ERROR(
        fail(WriteFileDurable(dir_ + "/" + info.name, contents)));
    stats.total_bytes += info.bytes;
    stats.total_records += info.records;
    manifest.files.push_back(std::move(info));
  }
  if (faults_.fail_after_files >= 0 &&
      static_cast<size_t>(faults_.fail_after_files) >= shards.size()) {
    return fail(Status::Unavailable("injected crash before manifest write"));
  }

  const std::string encoded = manifest.Encode();
  if (faults_.tear_manifest) {
    // Leave the debris of a crash mid-manifest-write: a prefix of the real
    // bytes, never fsynced, with no cursor advance.
    TXREP_RETURN_IF_ERROR(fail(WriteFileRaw(
        dir_ + "/" + manifest_name,
        std::string_view(encoded).substr(0, encoded.size() / 2))));
    return fail(Status::Unavailable("injected torn manifest"));
  }
  TXREP_RETURN_IF_ERROR(
      fail(WriteFileDurable(dir_ + "/" + manifest_name, encoded)));

  if (faults_.skip_cursor) {
    return fail(Status::Unavailable("injected crash before cursor advance"));
  }
  TXREP_RETURN_IF_ERROR(fail(StoreCursor(
      dir_, CursorState{snapshot_epoch, manifest_name})));

  stats.duration_us = watch.ElapsedMicros();
  if (checkpoints_ != nullptr) checkpoints_->Increment();
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(stats.total_bytes));
  }
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->Set(static_cast<int64_t>(stats.epoch));
  }
  if (latency_ != nullptr) latency_->Record(stats.duration_us);
  return stats;
}

Result<CheckpointStats> CheckpointWriter::Write(uint64_t snapshot_epoch,
                                                kv::KvCluster& cluster) {
  std::vector<kv::KvStore*> shards;
  shards.reserve(cluster.num_nodes());
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    shards.push_back(&cluster.node(i));
  }
  return Write(snapshot_epoch, shards);
}

Status CheckpointWriter::Prune(uint64_t keep_epoch) {
  Result<std::vector<std::string>> names = ListDir(dir_);
  if (names.status().IsNotFound()) return Status::OK();
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    uint64_t epoch = 0;
    bool stale = false;
    if (ParseManifestFileName(name, &epoch)) {
      stale = epoch < keep_epoch;
    } else if (name.rfind("chk-", 0) == 0 && name.size() > 20) {
      uint64_t value = 0;
      bool numeric = true;
      for (char c : name.substr(4, 16)) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        value = value * 10 + static_cast<uint64_t>(c - '0');
      }
      stale = numeric && value < keep_epoch;
    } else if (name.size() > 4 && name.rfind(".tmp") == name.size() - 4) {
      stale = true;  // Stranded temp file from an interrupted write.
    }
    if (stale) {
      TXREP_RETURN_IF_ERROR(RemoveFileIfExists(dir_ + "/" + name));
    }
  }
  return Status::OK();
}

namespace {

/// Loads and fully verifies the checkpoint a decoded manifest describes.
Result<std::vector<kv::StoreDump>> LoadShards(
    const std::string& dir, const CheckpointManifest& manifest) {
  std::vector<kv::StoreDump> shards;
  shards.reserve(manifest.files.size());
  for (const SnapshotFileInfo& file : manifest.files) {
    TXREP_ASSIGN_OR_RETURN(std::string contents,
                           ReadFileToString(dir + "/" + file.name));
    if (contents.size() != file.bytes) {
      return Status::Corruption(file.name + ": size mismatch");
    }
    if (codec::Fnv1a(contents) != file.checksum) {
      return Status::Corruption(file.name + ": checksum mismatch");
    }
    TXREP_ASSIGN_OR_RETURN(kv::StoreDump dump,
                           DecodeSnapshotPayload(contents));
    if (dump.size() != file.records) {
      return Status::Corruption(file.name + ": record count mismatch");
    }
    shards.push_back(std::move(dump));
  }
  return shards;
}

}  // namespace

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir,
                                              obs::MetricsRegistry* metrics) {
  obs::Counter* rejected =
      metrics != nullptr ? metrics->GetCounter(obs::kRecovRejectedCheckpoints)
                         : nullptr;
  obs::Counter* fallbacks =
      metrics != nullptr ? metrics->GetCounter(obs::kRecovCursorFallbacks)
                         : nullptr;

  Result<std::vector<std::string>> names = ListDir(dir);
  if (names.status().IsNotFound()) {
    return Status::NotFound("no checkpoint directory at " + dir);
  }
  if (!names.ok()) return names.status();

  // Newest epoch first; the manifests on disk, not the cursor, decide which
  // checkpoint is current (the cursor may lag one write behind).
  std::vector<std::pair<uint64_t, std::string>> manifests;
  for (const std::string& name : *names) {
    uint64_t epoch = 0;
    if (ParseManifestFileName(name, &epoch)) manifests.emplace_back(epoch, name);
  }
  std::sort(manifests.begin(), manifests.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  const Result<CursorState> cursor = LoadCursor(dir);

  for (const auto& [epoch, name] : manifests) {
    Result<std::string> bytes = ReadFileToString(dir + "/" + name);
    if (!bytes.ok()) {
      if (rejected != nullptr) rejected->Increment();
      continue;
    }
    Result<CheckpointManifest> manifest = CheckpointManifest::Decode(*bytes);
    if (!manifest.ok() || manifest->snapshot_epoch != epoch) {
      if (rejected != nullptr) rejected->Increment();
      continue;
    }
    Result<std::vector<kv::StoreDump>> shards = LoadShards(dir, *manifest);
    if (!shards.ok()) {
      if (rejected != nullptr) rejected->Increment();
      continue;
    }
    LoadedCheckpoint loaded;
    loaded.manifest = std::move(*manifest);
    loaded.shards = std::move(*shards);
    loaded.cursor_matched = cursor.ok() && cursor->epoch == epoch;
    if (!loaded.cursor_matched && fallbacks != nullptr) {
      fallbacks->Increment();
    }
    return loaded;
  }
  return Status::NotFound("no usable checkpoint in " + dir);
}

Status InstallCheckpoint(const LoadedCheckpoint& checkpoint,
                         const std::vector<kv::KvStore*>& shards) {
  if (shards.size() != checkpoint.shards.size()) {
    return Status::InvalidArgument(
        "shard count mismatch: checkpoint has " +
        std::to_string(checkpoint.shards.size()) + ", target has " +
        std::to_string(shards.size()));
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    TXREP_RETURN_IF_ERROR(shards[i]->Clear());
    for (const auto& [key, value] : checkpoint.shards[i]) {
      TXREP_RETURN_IF_ERROR(shards[i]->Put(key, value));
    }
  }
  return Status::OK();
}

Status InstallCheckpoint(const LoadedCheckpoint& checkpoint,
                         kv::KvCluster& cluster) {
  if (static_cast<size_t>(cluster.num_nodes()) == checkpoint.shards.size()) {
    std::vector<kv::KvStore*> shards;
    shards.reserve(cluster.num_nodes());
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      shards.push_back(&cluster.node(i));
    }
    return InstallCheckpoint(checkpoint, shards);
  }
  // Node count changed since the snapshot: clear everything and let the
  // cluster's hash partitioner re-route every pair.
  TXREP_RETURN_IF_ERROR(cluster.Clear());
  for (const kv::StoreDump& dump : checkpoint.shards) {
    for (const auto& [key, value] : dump) {
      TXREP_RETURN_IF_ERROR(cluster.Put(key, value));
    }
  }
  return Status::OK();
}

}  // namespace txrep::recov
