#ifndef TXREP_RECOV_MANIFEST_H_
#define TXREP_RECOV_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace txrep::recov {

/// One per-shard snapshot file as recorded by the manifest. `checksum` is the
/// FNV-1a of the file's entire contents; a reader rejects the checkpoint if
/// any file is missing, has a different size, or hashes differently.
struct SnapshotFileInfo {
  std::string name;       // File name inside the checkpoint directory.
  uint64_t bytes = 0;     // Full file size in bytes.
  uint64_t records = 0;   // Live key-value pairs in the file.
  uint64_t checksum = 0;  // codec::Fnv1a over the file contents.
};

/// The checkpoint manifest: the single record that makes a checkpoint real.
/// A checkpoint whose snapshot files all exist but whose manifest is absent
/// or torn is garbage by definition — recovery skips it. The manifest is
/// written durably (tmp + fsync + rename) only after every snapshot file it
/// names has been fsynced.
struct CheckpointManifest {
  /// Last commit LSN applied to the replica before the snapshot was cut (at
  /// the TM quiescent barrier). Replay resumes from `snapshot_epoch + 1`.
  uint64_t snapshot_epoch = 0;

  /// One entry per cluster shard, ordered by shard index. Partition count
  /// must match at install time (hash partitioning pins keys to shards).
  std::vector<SnapshotFileInfo> files;

  /// Serializes with a trailing whole-body FNV-1a so a torn manifest is
  /// detected on load.
  std::string Encode() const;

  /// Corruption on bad magic/checksum/underflow.
  static Result<CheckpointManifest> Decode(std::string_view bytes);
};

/// "MANIFEST-0000000000000042" — zero-padded so lexicographic order equals
/// epoch order in directory listings.
std::string ManifestFileName(uint64_t epoch);

/// True (and sets *epoch) iff `name` is a well-formed manifest file name.
bool ParseManifestFileName(std::string_view name, uint64_t* epoch);

/// "chk-0000000000000042-node-3.snap".
std::string SnapshotFileName(uint64_t epoch, int node_index);

/// Encodes / decodes one snapshot file: varint record count, then
/// length-prefixed key/value pairs sorted by key, then a trailing FNV-1a, so
/// each file is also self-validating independent of the manifest.
std::string EncodeSnapshotPayload(
    const std::vector<std::pair<std::string, std::string>>& dump);
Result<std::vector<std::pair<std::string, std::string>>> DecodeSnapshotPayload(
    std::string_view bytes);

}  // namespace txrep::recov

#endif  // TXREP_RECOV_MANIFEST_H_
