#include "recov/catchup_gate.h"

#include <string>

#include "common/clock.h"
#include "obs/names.h"

namespace txrep::recov {

CatchupGate::CatchupGate(uint64_t max_lag, obs::MetricsRegistry* metrics)
    : max_lag_(max_lag) {
  if (metrics != nullptr) {
    lag_gauge_ = metrics->GetGauge(obs::kRecovCatchupLag);
    rejects_ = metrics->GetCounter(obs::kRecovGateRejects);
  }
}

void CatchupGate::Update(uint64_t replica_lsn, uint64_t primary_lsn) {
  const uint64_t lag =
      primary_lsn > replica_lsn ? primary_lsn - replica_lsn : 0;
  bool opened = false;
  {
    check::MutexLock lock(&mu_);
    lag_ = lag;
    seen_update_ = true;
    if (!open_ && lag <= max_lag_) {
      open_ = true;
      opened = true;
    }
  }
  if (lag_gauge_ != nullptr) lag_gauge_->Set(static_cast<int64_t>(lag));
  if (opened) cv_.NotifyAll();
}

bool CatchupGate::IsOpen() const {
  check::MutexLock lock(&mu_);
  return open_;
}

Status CatchupGate::CheckReadAdmissible() {
  uint64_t lag = 0;
  {
    check::MutexLock lock(&mu_);
    if (open_) return Status::OK();
    lag = lag_;
  }
  if (rejects_ != nullptr) rejects_->Increment();
  return Status::FailedPrecondition(
      "replica still catching up (lag " + std::to_string(lag) + " > max " +
      std::to_string(max_lag_) + " LSNs)");
}

uint64_t CatchupGate::lag() const {
  check::MutexLock lock(&mu_);
  return lag_;
}

bool CatchupGate::WaitUntilOpenFor(int64_t timeout_us) {
  const int64_t deadline = NowMicros() + timeout_us;
  check::MutexLock lock(&mu_);
  while (!open_) {
    const int64_t remaining = deadline - NowMicros();
    if (remaining <= 0) break;
    cv_.WaitForMicros(remaining);
  }
  return open_;
}

}  // namespace txrep::recov
