#include "recov/cursor.h"

#include "codec/encoding.h"
#include "recov/io.h"

namespace txrep::recov {

namespace {

constexpr uint64_t kCursorVersion = 1;

}  // namespace

std::string CursorFileName() { return "CURSOR"; }

Status StoreCursor(const std::string& checkpoint_dir,
                   const CursorState& state) {
  std::string body;
  codec::AppendVarint64(body, kCursorVersion);
  codec::AppendVarint64(body, state.epoch);
  codec::AppendLengthPrefixed(body, state.manifest_file);
  codec::AppendFixed64(body, codec::Fnv1a(body));
  return WriteFileDurable(checkpoint_dir + "/" + CursorFileName(), body);
}

Result<CursorState> LoadCursor(const std::string& checkpoint_dir) {
  TXREP_ASSIGN_OR_RETURN(
      std::string bytes,
      ReadFileToString(checkpoint_dir + "/" + CursorFileName()));
  if (bytes.size() < 8) {
    return Status::Corruption("cursor shorter than its checksum");
  }
  const std::string_view body =
      std::string_view(bytes).substr(0, bytes.size() - 8);
  std::string_view tail = std::string_view(bytes).substr(bytes.size() - 8);
  uint64_t stored = 0;
  codec::GetFixed64(&tail, &stored);
  if (stored != codec::Fnv1a(body)) {
    return Status::Corruption("cursor checksum mismatch (torn write?)");
  }

  std::string_view src = body;
  uint64_t version = 0;
  CursorState state;
  std::string_view manifest_file;
  if (!codec::GetVarint64(&src, &version) || version != kCursorVersion ||
      !codec::GetVarint64(&src, &state.epoch) ||
      !codec::GetLengthPrefixed(&src, &manifest_file) || !src.empty()) {
    return Status::Corruption("cursor decode failed");
  }
  state.manifest_file = std::string(manifest_file);
  return state;
}

}  // namespace txrep::recov
