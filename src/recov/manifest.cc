#include "recov/manifest.h"

#include <cinttypes>
#include <cstdio>

#include "codec/encoding.h"

namespace txrep::recov {

namespace {

// Version byte leading every recov on-disk structure, bumped on layout change.
constexpr uint64_t kManifestVersion = 1;
constexpr uint64_t kSnapshotVersion = 1;

constexpr char kManifestPrefix[] = "MANIFEST-";

}  // namespace

std::string CheckpointManifest::Encode() const {
  std::string body;
  codec::AppendVarint64(body, kManifestVersion);
  codec::AppendVarint64(body, snapshot_epoch);
  codec::AppendVarint64(body, files.size());
  for (const SnapshotFileInfo& file : files) {
    codec::AppendLengthPrefixed(body, file.name);
    codec::AppendVarint64(body, file.bytes);
    codec::AppendVarint64(body, file.records);
    codec::AppendFixed64(body, file.checksum);
  }
  codec::AppendFixed64(body, codec::Fnv1a(body));
  return body;
}

Result<CheckpointManifest> CheckpointManifest::Decode(std::string_view bytes) {
  if (bytes.size() < 8) {
    return Status::Corruption("manifest shorter than its checksum");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  std::string_view tail = bytes.substr(bytes.size() - 8);
  uint64_t stored = 0;
  codec::GetFixed64(&tail, &stored);
  if (stored != codec::Fnv1a(body)) {
    return Status::Corruption("manifest checksum mismatch (torn write?)");
  }

  std::string_view src = body;
  uint64_t version = 0;
  uint64_t num_files = 0;
  CheckpointManifest manifest;
  if (!codec::GetVarint64(&src, &version) || version != kManifestVersion) {
    return Status::Corruption("unsupported manifest version");
  }
  if (!codec::GetVarint64(&src, &manifest.snapshot_epoch) ||
      !codec::GetVarint64(&src, &num_files)) {
    return Status::Corruption("manifest header underflow");
  }
  manifest.files.reserve(num_files);
  for (uint64_t i = 0; i < num_files; ++i) {
    SnapshotFileInfo file;
    std::string_view name;
    if (!codec::GetLengthPrefixed(&src, &name) ||
        !codec::GetVarint64(&src, &file.bytes) ||
        !codec::GetVarint64(&src, &file.records) ||
        !codec::GetFixed64(&src, &file.checksum)) {
      return Status::Corruption("manifest file entry underflow");
    }
    file.name = std::string(name);
    manifest.files.push_back(std::move(file));
  }
  if (!src.empty()) {
    return Status::Corruption("trailing bytes after manifest entries");
  }
  return manifest;
}

std::string ManifestFileName(uint64_t epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016" PRIu64, kManifestPrefix, epoch);
  return buf;
}

bool ParseManifestFileName(std::string_view name, uint64_t* epoch) {
  constexpr size_t kPrefixLen = sizeof(kManifestPrefix) - 1;
  if (name.size() != kPrefixLen + 16 || name.substr(0, kPrefixLen) != kManifestPrefix) {
    return false;
  }
  uint64_t value = 0;
  for (char c : name.substr(kPrefixLen)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

std::string SnapshotFileName(uint64_t epoch, int node_index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "chk-%016" PRIu64 "-node-%d.snap", epoch,
                node_index);
  return buf;
}

std::string EncodeSnapshotPayload(
    const std::vector<std::pair<std::string, std::string>>& dump) {
  std::string body;
  codec::AppendVarint64(body, kSnapshotVersion);
  codec::AppendVarint64(body, dump.size());
  for (const auto& [key, value] : dump) {
    codec::AppendLengthPrefixed(body, key);
    codec::AppendLengthPrefixed(body, value);
  }
  codec::AppendFixed64(body, codec::Fnv1a(body));
  return body;
}

Result<std::vector<std::pair<std::string, std::string>>> DecodeSnapshotPayload(
    std::string_view bytes) {
  if (bytes.size() < 8) {
    return Status::Corruption("snapshot file shorter than its checksum");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  std::string_view tail = bytes.substr(bytes.size() - 8);
  uint64_t stored = 0;
  codec::GetFixed64(&tail, &stored);
  if (stored != codec::Fnv1a(body)) {
    return Status::Corruption("snapshot file checksum mismatch");
  }

  std::string_view src = body;
  uint64_t version = 0;
  uint64_t count = 0;
  if (!codec::GetVarint64(&src, &version) || version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  if (!codec::GetVarint64(&src, &count)) {
    return Status::Corruption("snapshot header underflow");
  }
  std::vector<std::pair<std::string, std::string>> dump;
  dump.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view key;
    std::string_view value;
    if (!codec::GetLengthPrefixed(&src, &key) ||
        !codec::GetLengthPrefixed(&src, &value)) {
      return Status::Corruption("snapshot record underflow");
    }
    dump.emplace_back(std::string(key), std::string(value));
  }
  if (!src.empty()) {
    return Status::Corruption("trailing bytes after snapshot records");
  }
  return dump;
}

}  // namespace txrep::recov
