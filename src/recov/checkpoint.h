#ifndef TXREP_RECOV_CHECKPOINT_H_
#define TXREP_RECOV_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"
#include "recov/manifest.h"

namespace txrep::kv {
class KvCluster;
}  // namespace txrep::kv

namespace txrep::recov {

/// Crash simulation knobs for CheckpointWriter — each reproduces the on-disk
/// debris of a real crash at that point of the protocol, then returns an
/// error without touching anything further.
struct CheckpointFaults {
  /// >= 0: "crash" after durably writing this many snapshot files; no
  /// manifest is written, so the whole checkpoint is invisible to recovery.
  int fail_after_files = -1;

  /// Write all snapshot files, then leave a torn (truncated, unsynced)
  /// manifest behind instead of a valid one. Recovery must reject it and
  /// fall back to the previous checkpoint.
  bool tear_manifest = false;

  /// Complete the manifest but "crash" before advancing the cursor. The
  /// stale-cursor recovery path must still find the newer checkpoint.
  bool skip_cursor = false;
};

/// What one completed checkpoint cost, for callers and benchmarks.
struct CheckpointStats {
  uint64_t epoch = 0;
  uint64_t total_bytes = 0;    // Sum of snapshot file sizes.
  uint64_t total_records = 0;  // Live keys captured.
  int64_t duration_us = 0;
};

/// Writes consistent cluster checkpoints into one directory.
///
/// Protocol (order is the crash-safety argument):
///   1. every per-shard snapshot file is written durably (tmp+fsync+rename);
///   2. the manifest naming them (with sizes + checksums) is written durably —
///      this is the commit point of the checkpoint;
///   3. the CURSOR file is atomically advanced to the new epoch.
/// A crash before 2 leaves orphan .snap files recovery ignores; a crash
/// before 3 leaves a stale cursor, which recovery treats as a hint only.
///
/// The caller must guarantee the shards are quiescent for the duration of
/// Write() (TxRepSystem uses the TM quiescent barrier / apply gate).
class CheckpointWriter {
 public:
  /// `metrics` is optional and must outlive the writer.
  explicit CheckpointWriter(std::string checkpoint_dir,
                            obs::MetricsRegistry* metrics = nullptr);

  /// Snapshot `shards` (one file per entry, in order) at `snapshot_epoch`.
  /// Epochs must be monotonically increasing per directory; re-writing an
  /// existing epoch is InvalidArgument.
  Result<CheckpointStats> Write(uint64_t snapshot_epoch,
                                const std::vector<kv::KvStore*>& shards);

  /// Convenience overload snapshotting every node of a cluster.
  Result<CheckpointStats> Write(uint64_t snapshot_epoch,
                                kv::KvCluster& cluster);

  /// Deletes checkpoints older than `keep_epoch` (their manifest and
  /// snapshot files), plus stranded .tmp debris.
  Status Prune(uint64_t keep_epoch);

  void set_faults(const CheckpointFaults& faults) { faults_ = faults; }

  const std::string& dir() const { return dir_; }

 private:
  const std::string dir_;
  CheckpointFaults faults_;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* failures_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
  Histogram* latency_ = nullptr;
};

/// A checkpoint read back from disk and fully verified (manifest checksum,
/// per-file existence, size and checksum, payload decode).
struct LoadedCheckpoint {
  CheckpointManifest manifest;
  std::vector<kv::StoreDump> shards;  // Parallel to manifest.files.
  /// True iff the durable cursor pointed exactly at this checkpoint; false
  /// means the cursor was missing, torn, or stale and recovery fell back to
  /// scanning manifests by epoch.
  bool cursor_matched = false;
};

/// Finds the newest fully-valid checkpoint in `dir`. Partial, torn or
/// corrupt checkpoints are counted and skipped; NotFound when the directory
/// holds no usable checkpoint at all (cold start).
Result<LoadedCheckpoint> LoadLatestCheckpoint(
    const std::string& dir, obs::MetricsRegistry* metrics = nullptr);

/// Replaces the contents of `shards` with the checkpoint's (Clear + Put).
/// Shard count must match the manifest.
Status InstallCheckpoint(const LoadedCheckpoint& checkpoint,
                         const std::vector<kv::KvStore*>& shards);

/// Cluster overload. When the node count matches the manifest the per-node
/// partitioning is preserved verbatim; otherwise every pair is re-routed
/// through the cluster's hash partitioner.
Status InstallCheckpoint(const LoadedCheckpoint& checkpoint,
                         kv::KvCluster& cluster);

}  // namespace txrep::recov

#endif  // TXREP_RECOV_CHECKPOINT_H_
