#ifndef TXREP_RECOV_CURSOR_H_
#define TXREP_RECOV_CURSOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace txrep::recov {

/// The durable replication cursor: the replica's claim "I hold a checkpoint
/// at `epoch`, resume the subscription at `epoch + 1`". Stored as a single
/// checksummed file named CURSOR in the checkpoint directory, replaced
/// atomically, and — crucially — only advanced *after* the manifest it points
/// at is durable. A crash between manifest and cursor leaves a valid older
/// cursor plus a newer complete checkpoint; recovery then prefers the newest
/// decodable manifest over the cursor (the cursor is a hint, the manifests
/// are the truth).
struct CursorState {
  uint64_t epoch = 0;          // Snapshot epoch of the referenced checkpoint.
  std::string manifest_file;   // Manifest file name for that epoch.
};

/// Name of the cursor file inside a checkpoint directory ("CURSOR").
std::string CursorFileName();

/// Durably replaces the cursor (tmp + fsync + rename + dir fsync).
Status StoreCursor(const std::string& checkpoint_dir, const CursorState& state);

/// NotFound when no cursor exists; Corruption when the file is torn or does
/// not checksum — callers treat both as "fall back to manifest scan".
Result<CursorState> LoadCursor(const std::string& checkpoint_dir);

}  // namespace txrep::recov

#endif  // TXREP_RECOV_CURSOR_H_
