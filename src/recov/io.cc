#include "recov/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace txrep::recov {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Unavailable(op + " failed for " + path + ": " +
                             std::strerror(errno));
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Errno("fopen", path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Unavailable("fread failed for " + path);
  return out;
}

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno("open", tmp);
    size_t written = 0;
    while (written < contents.size()) {
      const ssize_t n =
          ::write(fd, contents.data() + written, contents.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        return Errno("write", tmp);
      }
      written += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("fsync", tmp);
    }
    if (::close(fd) != 0) {
      ::unlink(tmp.c_str());
      return Errno("close", tmp);
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return SyncDir(dir);
}

Status WriteFileRaw(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Errno("fopen", path);
  const size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const int rc = std::fclose(f);
  if (n != contents.size() || rc != 0) {
    return Status::Unavailable("short write for " + path);
  }
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  // Create each prefix component; EEXIST is fine at every level.
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such dir: " + path);
    return Errno("opendir", path);
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((path + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Errno("opendir", path);
  }
  Status status = Status::OK();
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string child = path + "/" + name;
    struct stat st{};
    if (::lstat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      status = RemoveDirRecursive(child);
    } else if (::unlink(child.c_str()) != 0) {
      status = Errno("unlink", child);
    }
    if (!status.ok()) break;
  }
  ::closedir(dir);
  if (!status.ok()) return status;
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("rmdir", path);
  }
  return Status::OK();
}

Status SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync", path);
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace txrep::recov
