#ifndef TXREP_RECOV_CATCHUP_GATE_H_
#define TXREP_RECOV_CATCHUP_GATE_H_

#include <cstdint>

#include "check/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace txrep::recov {

/// Read-admission gate for a replica that is still catching up.
///
/// A freshly bootstrapped or restarted replica holds a stale-but-consistent
/// snapshot while it replays the log tail; serving reads from it would
/// silently widen staleness far past what the steady-state pipeline exhibits.
/// The gate starts closed, each progress report compares the replica's
/// applied LSN against the primary's latest LSN, and the gate opens — once,
/// permanently — when the lag first falls to `max_lag` or below. From then on
/// the replica is a normal pipeline member and ordinary replication lag is
/// not re-gated.
class CatchupGate {
 public:
  /// `max_lag` = largest primary_lsn − replica_lsn at which reads open.
  /// 0 means fully caught up. `metrics` (optional) must outlive the gate.
  explicit CatchupGate(uint64_t max_lag,
                       obs::MetricsRegistry* metrics = nullptr);

  CatchupGate(const CatchupGate&) = delete;
  CatchupGate& operator=(const CatchupGate&) = delete;

  /// Reports catch-up progress. Thread-safe; called by the bootstrap
  /// catch-up loop after every applied batch.
  void Update(uint64_t replica_lsn, uint64_t primary_lsn);

  bool IsOpen() const;

  /// OK when open; FailedPrecondition (and a gate-reject metric tick)
  /// while the replica is still catching up.
  Status CheckReadAdmissible();

  /// Last reported primary_lsn − replica_lsn (0 when replica is ahead,
  /// which happens transiently while the primary's LSN sample is stale).
  uint64_t lag() const;

  /// Blocks until the gate opens or `timeout_us` elapses; returns IsOpen().
  bool WaitUntilOpenFor(int64_t timeout_us);

 private:
  const uint64_t max_lag_;

  mutable check::Mutex mu_{"recov.catchup_gate.mu"};
  check::CondVar cv_{&mu_};
  bool open_ TXREP_GUARDED_BY(mu_) = false;
  uint64_t lag_ TXREP_GUARDED_BY(mu_) = 0;
  bool seen_update_ TXREP_GUARDED_BY(mu_) = false;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* lag_gauge_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* rejects_ = nullptr;
};

}  // namespace txrep::recov

#endif  // TXREP_RECOV_CATCHUP_GATE_H_
