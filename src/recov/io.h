#ifndef TXREP_RECOV_IO_H_
#define TXREP_RECOV_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace txrep::recov {

/// Filesystem primitives for the recovery subsystem. All durable-state file
/// I/O outside src/kv/ funnels through these helpers (enforced by
/// scripts/lint.sh) so the crash-safety rules — fsync before rename, rename
/// for atomicity, directory fsync after rename — live in exactly one place.

/// Reads the whole file. NotFound when the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-atomically replaces `path` with `contents`: writes `path + ".tmp"`,
/// fsyncs it, renames it over `path` and fsyncs the parent directory. After
/// an OK return the new contents survive a crash; after any error the old
/// file (if any) is still intact.
Status WriteFileDurable(const std::string& path, std::string_view contents);

/// Plain non-atomic, non-synced write (used by fault injection to leave the
/// same partial files behind that a real mid-write crash would).
Status WriteFileRaw(const std::string& path, std::string_view contents);

/// Creates the directory (and parents) if absent.
Status EnsureDir(const std::string& path);

/// Names (not paths) of regular files directly inside `path`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& path);

/// Deletes a file; absent file is OK.
Status RemoveFileIfExists(const std::string& path);

/// Recursively deletes a directory tree; absent tree is OK. For test/bench
/// scratch checkpoint directories.
Status RemoveDirRecursive(const std::string& path);

/// fsyncs a directory so a completed rename inside it is durable.
Status SyncDir(const std::string& path);

/// Size of the file in bytes, or NotFound.
Result<uint64_t> FileSize(const std::string& path);

}  // namespace txrep::recov

#endif  // TXREP_RECOV_IO_H_
