#include "check/schedule_explorer.h"

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "blink/blink_tree.h"
#include "check/invariants.h"
#include "codec/kv_keys.h"
#include "codec/schema_codec.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/batch_dispatcher.h"
#include "core/serial_applier.h"
#include "core/transaction_manager.h"
#include "kv/inmemory_node.h"
#include "kv/kv_cluster.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "net/endpoint.h"
#include "net/socket.h"
#include "qt/query_translator.h"
#include "recov/checkpoint.h"
#include "recov/io.h"
#include "rel/database.h"
#include "rel/statement.h"
#include "trace/tracer.h"
#include "txrep/remote_replica.h"
#include "workload/tpcc.h"

namespace txrep::check {

namespace {

using rel::Value;

/// Everything one seed determines. Deriving the whole configuration from the
/// seed keeps a failure reproducible from its seed alone.
struct ScheduleConfig {
  int hot_rows;
  int threads;
  int64_t service_micros;
  double failure_rate;
  size_t gc_threshold;
  bool buffer_read_cache;
  bool class_filter;
  size_t max_node_keys;
  double read_only_rate;
};

/// Batched-apply knobs, derived from a private stream (seed ^ constant) so
/// enabling the mode does not perturb the main schedule derivation.
struct BatchConfig {
  int batch_size;
  bool adaptive;
  int num_nodes;
  int dispatch_threads;
};

BatchConfig DeriveBatchConfig(uint64_t seed) {
  Random rng(seed ^ 0xb47c0a5ed15b47c0ULL);
  BatchConfig config;
  config.batch_size = 1 + static_cast<int>(rng.Uniform(64));
  config.adaptive = rng.Bernoulli(0.3);
  config.num_nodes = 1 + static_cast<int>(rng.Uniform(5));
  // 0 = inline sequential fan-out; >0 = parallel dispatch pool.
  config.dispatch_threads = static_cast<int>(rng.Uniform(5));
  return config;
}

core::BatchDispatchOptions ToDispatchOptions(const BatchConfig& config) {
  core::BatchDispatchOptions options;
  options.batch_size = config.batch_size;
  options.adaptive = config.adaptive;
  return options;
}

/// TPC-C-lite knobs, derived from a private stream (seed ^ constant) like
/// the batch/trace/wire knobs: enabling tpcc mode never perturbs how other
/// modes interpret a seed.
workload::TpccOptions DeriveTpccOptions(uint64_t seed) {
  Random rng(seed ^ 0x7bccc0de5eed2015ULL);
  workload::TpccOptions options;
  options.seed = rng.NextUint64();
  options.scale.warehouses = 1 + static_cast<int>(rng.Uniform(3));
  options.scale.districts_per_warehouse = 2 + static_cast<int>(rng.Uniform(3));
  options.scale.customers_per_district = 4 + static_cast<int>(rng.Uniform(8));
  options.scale.items = 8 + static_cast<int>(rng.Uniform(16));
  options.scale.initial_orders_per_district =
      1 + static_cast<int>(rng.Uniform(3));
  options.scale.max_order_lines = 2 + static_cast<int>(rng.Uniform(4));
  options.warehouse_zipf_theta =
      rng.Bernoulli(0.5) ? 0.0 : 0.5 + 0.4 * rng.NextDouble();
  options.remote_line_fraction = 0.3 * rng.NextDouble();
  // Randomized NewOrder/Payment split; the explorer replays the update log,
  // so the read transactions stay out of the stream.
  options.mix.new_order = 30 + static_cast<int>(rng.Uniform(40));
  options.mix.payment = 30 + static_cast<int>(rng.Uniform(40));
  options.mix.order_status = 0;
  options.mix.stock_level = 0;
  return options;
}

ScheduleConfig DeriveConfig(Random& rng) {
  ScheduleConfig config;
  config.hot_rows = 1 + static_cast<int>(rng.Uniform(8));
  config.threads = 1 + static_cast<int>(rng.Uniform(8));
  // Most schedules run at memory speed (tight interleavings); some add
  // service-time jitter so apply-stage overlap gets explored too.
  config.service_micros =
      rng.Bernoulli(0.3) ? static_cast<int64_t>(rng.Uniform(40)) : 0;
  // Occasional transient failures exercise the execution-restart path.
  config.failure_rate = rng.Bernoulli(0.25) ? 0.02 : 0.0;
  config.gc_threshold = 1 + rng.Uniform(32);  // Small: GC races with commits.
  config.buffer_read_cache = rng.Bernoulli(0.8);
  config.class_filter = rng.Bernoulli(0.8);
  config.max_node_keys = 4 + rng.Uniform(8);
  config.read_only_rate = rng.Bernoulli(0.5) ? 0.2 : 0.0;
  return config;
}

/// Generates the seed's workload into `db`: a table with one hash and one
/// range index (so index maintenance joins every conflict set), a seed
/// population, then randomized multi-statement transactions concentrated on
/// the hot rows.
Status GenerateWorkload(rel::Database& db, Random& rng,
                        const ScheduleConfig& config, int txns) {
  TXREP_ASSIGN_OR_RETURN(
      rel::TableSchema schema,
      rel::TableSchema::Create("S",
                               {{"ID", rel::ValueType::kInt64},
                                {"VAL", rel::ValueType::kInt64},
                                {"COST", rel::ValueType::kDouble}},
                               "ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(schema)));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("S", "COST"));
  TXREP_RETURN_IF_ERROR(db.CreateRangeIndex("S", "COST"));

  std::set<int64_t> live;
  int64_t next_id = 1;
  for (int i = 0; i < config.hot_rows; ++i) {
    const int64_t id = next_id++;
    TXREP_RETURN_IF_ERROR(
        db.ExecuteTransaction(
              {rel::InsertStatement{
                  "S",
                  {},
                  {Value::Int(id), Value::Int(0),
                   Value::Real(static_cast<double>(rng.Uniform(10)))}}})
            .status());
    live.insert(id);
  }

  auto random_live = [&]() -> int64_t {
    auto it = live.lower_bound(
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(next_id))));
    if (it == live.end()) it = live.begin();
    return *it;
  };

  for (int t = 0; t < txns; ++t) {
    std::vector<rel::Statement> statements;
    const int ops = 1 + static_cast<int>(rng.Uniform(3));
    for (int o = 0; o < ops; ++o) {
      const uint64_t pick = rng.Uniform(10);
      if (pick < 3 || live.empty()) {
        const int64_t id = next_id++;
        statements.push_back(rel::InsertStatement{
            "S",
            {},
            {Value::Int(id), Value::Int(static_cast<int64_t>(t)),
             Value::Real(static_cast<double>(rng.Uniform(10)))}});
        live.insert(id);
      } else if (pick < 8) {
        statements.push_back(rel::UpdateStatement{
            "S",
            {{"VAL", Value::Int(static_cast<int64_t>(rng.Uniform(1000)))},
             {"COST", Value::Real(static_cast<double>(rng.Uniform(10)))}},
            {rel::Predicate{"ID", rel::PredicateOp::kEq,
                            Value::Int(random_live()),
                            {}}}});
      } else {
        const int64_t id = random_live();
        statements.push_back(rel::DeleteStatement{
            "S",
            {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(id), {}}}});
        live.erase(id);
      }
    }
    TXREP_RETURN_IF_ERROR(db.ExecuteTransaction(statements).status());
  }
  return Status::OK();
}

/// Read-only transaction body: probes a row object through the buffered
/// view. NotFound is a legal answer (the row may not exist at this sequence
/// point); the probe exists to push read/write conflict edges into the
/// schedule, not to assert content.
core::Transaction::Body MakeReadOnlyProbe(std::string key) {
  return [key = std::move(key)](kv::KvStore* view) -> Status {
    Result<kv::Value> value = view->Get(key);
    if (!value.ok() && value.status().IsNotFound()) return Status::OK();
    return value.status();
  };
}

/// Read-only transaction body for opt_latch mode: builds an ephemeral
/// BlinkTree over the buffered view and runs a full range scan of the "S"
/// range index, so the optimistic read path faces the torn cross-key
/// snapshots a transaction buffer can serve. The scan must come back
/// strictly sorted (a duplicate means a split was double-emitted); Aborted
/// is legal — a wedged snapshot is exactly what the bounded retries are for,
/// and the TM's restart machinery re-executes against fresher state.
core::Transaction::Body MakeBlinkProbe(size_t max_node_keys,
                                       std::string table, std::string column) {
  return [max_node_keys, table = std::move(table),
          column = std::move(column)](kv::KvStore* view) -> Status {
    blink::BlinkTreeOptions tree_options;
    tree_options.max_node_keys = max_node_keys;
    // Keep the bounded waits short: against a stale buffered snapshot the
    // retries can never succeed, and the TM is waiting on this body.
    tree_options.max_parent_retries = 4;
    tree_options.max_read_restarts = 8;
    blink::BlinkTree tree(view, table, column, tree_options);
    TXREP_ASSIGN_OR_RETURN(std::vector<blink::EntryKey> entries,
                           tree.RangeScanBounds(std::nullopt, std::nullopt));
    for (size_t i = 0; i + 1 < entries.size(); ++i) {
      if (!(entries[i] < entries[i + 1])) {
        return Status::FailedPrecondition(
            "blink probe: unsorted or duplicated scan at index " +
            std::to_string(i));
      }
    }
    return Status::OK();
  };
}

std::string DiffDumps(const kv::StoreDump& serial,
                      const kv::StoreDump& concurrent) {
  if (serial.size() != concurrent.size()) {
    return "replica size diverged: serial=" + std::to_string(serial.size()) +
           " concurrent=" + std::to_string(concurrent.size());
  }
  for (size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].first != concurrent[i].first) {
      return "key set diverged at index " + std::to_string(i) + ": serial \"" +
             serial[i].first + "\" vs concurrent \"" + concurrent[i].first +
             "\"";
    }
    if (serial[i].second != concurrent[i].second) {
      return "value diverged for key \"" + serial[i].first + "\"";
    }
  }
  return {};
}

}  // namespace

ScheduleExplorer::ScheduleExplorer(ScheduleExplorerOptions options)
    : options_(options) {}

Status ScheduleExplorer::RunOneInternal(uint64_t seed,
                                        ScheduleReport* report) {
  Random rng(seed);
  const ScheduleConfig config = DeriveConfig(rng);

  rel::Database db;
  std::optional<workload::TpccWorkload> tpcc;
  uint64_t population_lsn = 0;
  if (options_.tpcc) {
    // The seed's workload is a whole TPC-C-lite deployment: population plus
    // a NewOrder/Payment stream over seed-derived scale/skew/mix.
    tpcc.emplace(DeriveTpccOptions(seed));
    TXREP_RETURN_IF_ERROR(tpcc->CreateSchema(db));
    TXREP_RETURN_IF_ERROR(tpcc->Populate(db));
    population_lsn = db.log().LastLsn();
    TXREP_RETURN_IF_ERROR(tpcc->RunWrites(db, options_.txns_per_schedule));
  } else {
    TXREP_RETURN_IF_ERROR(
        GenerateWorkload(db, rng, config, options_.txns_per_schedule));
  }

  qt::QueryTranslator translator(
      &db.catalog(), {.max_node_keys = config.max_node_keys});

  // Reference: serial replay on a pristine, failure-free store, dispatcher
  // pinned to batch size 1 — op-at-a-time ground truth through the batch API.
  kv::InMemoryKvNode serial_store;
  TXREP_RETURN_IF_ERROR(translator.InitializeIndexes(&serial_store));
  core::SerialApplier serial_applier(&serial_store, &translator,
                                     /*metrics=*/nullptr,
                                     core::BatchDispatchOptions{.batch_size = 1});
  TXREP_RETURN_IF_ERROR(serial_applier.ApplyBatch(db.log().ReadSince(0)));

  // Candidate: concurrent replay with every knob drawn from the seed.
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = config.service_micros;
  node_options.failure_seed = seed ^ 0x5bd1e995u;
  const BatchConfig batch_config = DeriveBatchConfig(seed);
  std::unique_ptr<kv::InMemoryKvNode> concurrent_node;
  std::unique_ptr<kv::KvCluster> concurrent_cluster;
  kv::KvStore* concurrent_store = nullptr;
  if (options_.batched_apply) {
    // Batched mode replays into a seed-derived cluster so the MultiWrite
    // routing + parallel fan-out path is part of the explored state space.
    kv::KvClusterOptions cluster_options;
    cluster_options.num_nodes = batch_config.num_nodes;
    cluster_options.node = node_options;
    cluster_options.dispatch_threads = batch_config.dispatch_threads;
    concurrent_cluster = std::make_unique<kv::KvCluster>(cluster_options);
    concurrent_store = concurrent_cluster.get();
  } else {
    concurrent_node = std::make_unique<kv::InMemoryKvNode>(node_options);
    concurrent_store = concurrent_node.get();
  }
  auto set_failure_rate = [&](double rate) {
    if (concurrent_cluster != nullptr) {
      concurrent_cluster->SetFailureRate(rate);
    } else {
      concurrent_node->set_failure_rate(rate);
    }
  };
  TXREP_RETURN_IF_ERROR(translator.InitializeIndexes(concurrent_store));
  // Inject transient failures only while the TM replays (the restart path
  // under test); index setup above and the audits below must stay clean.
  // The TPC-C bulk-population prefix must also replay clean: its 200-row
  // batches carry hundreds of KV ops per transaction, so any per-op failure
  // rate exhausts every retry budget. The failure window is armed in the
  // submission loop once the population prefix has applied.
  if (population_lsn == 0) set_failure_rate(config.failure_rate);

  core::TmOptions tm_options;
  tm_options.top_threads = config.threads;
  tm_options.bottom_threads = config.threads;
  tm_options.completed_gc_threshold = config.gc_threshold;
  tm_options.buffer_read_cache = config.buffer_read_cache;
  tm_options.enable_class_filter = config.class_filter;
  if (options_.tpcc) {
    // TPC-C write sets span ~15+ keys across tables and nodes, so the same
    // 2% per-op injected failure rate needs far more retry budget than the
    // single-table workload before a transaction gives up for good.
    tm_options.max_apply_retries = 64;
    tm_options.max_execution_retries = 256;
  }
  if (options_.batched_apply) {
    tm_options.apply_batch = ToDispatchOptions(batch_config);
  }

  // Traced mode: a live tracer with a seed-derived sampling period (private
  // stream, like the batch knobs) joins the replay. Contexts are minted per
  // LSN below, exactly as the log would have carried them.
  std::unique_ptr<trace::Tracer> tracer;
  if (options_.traced) {
    Random trace_rng(seed ^ 0x7ace5eedf117e000ULL);
    trace::TracerOptions trace_options;
    trace_options.sample_every = 1 + trace_rng.Uniform(4);
    tracer = std::make_unique<trace::Tracer>(trace_options);
  }

  // Opt-latch probe stream (private, like the batch/trace knobs): which of
  // the interleaved read-only slots become B-link index probes.
  Random opt_rng(seed ^ 0x0b71a7c4b5eed111ULL);
  std::vector<std::shared_ptr<core::Transaction>> blink_probes;

  core::TmStats stats;
  {
    core::TransactionManager tm(concurrent_store, &translator, tm_options,
                                /*metrics=*/nullptr, tracer.get());
    int64_t max_row_id = static_cast<int64_t>(config.hot_rows) +
                         options_.txns_per_schedule * 3 + 1;
    // Probe targets follow the workload: CUSTOMER rows (and the churning
    // STOCK.S_QUANTITY index) under TPC-C, the synthetic "S" table otherwise.
    auto probe_key = [&]() -> std::string {
      if (tpcc.has_value()) {
        const workload::TpccScale& scale = tpcc->scale();
        const int64_t w =
            1 + static_cast<int64_t>(
                    rng.Uniform(static_cast<uint64_t>(scale.warehouses)));
        const int64_t d = 1 + static_cast<int64_t>(rng.Uniform(
                                  static_cast<uint64_t>(
                                      scale.districts_per_warehouse)));
        const int64_t c =
            1 + static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
                    scale.customers_per_district)));
        return codec::RowKey(
            "CUSTOMER",
            Value::Int(workload::TpccWorkload::CustomerKey(w, d, c)));
      }
      return codec::RowKey(
          "S", Value::Int(1 + static_cast<int64_t>(rng.Uniform(
                                  static_cast<uint64_t>(max_row_id)))));
    };
    const char* blink_table = tpcc.has_value() ? "STOCK" : "S";
    const char* blink_column = tpcc.has_value() ? "S_QUANTITY" : "COST";
    bool failures_armed = population_lsn == 0;
    for (rel::LogTransaction& txn : db.log().ReadSince(0)) {
      if (!failures_armed && txn.lsn > population_lsn) {
        TXREP_RETURN_IF_ERROR(tm.WaitIdle());
        set_failure_rate(config.failure_rate);
        failures_armed = true;
      }
      if (tracer != nullptr) txn.trace = tracer->Mint(txn.lsn);
      tm.SubmitUpdate(std::move(txn));
      if (config.read_only_rate > 0.0 &&
          rng.Bernoulli(config.read_only_rate)) {
        tm.SubmitReadOnly(MakeReadOnlyProbe(probe_key()));
      }
      if (options_.opt_latch && opt_rng.Bernoulli(0.25)) {
        blink_probes.push_back(tm.SubmitReadOnly(MakeBlinkProbe(
            config.max_node_keys, blink_table, blink_column)));
      }
    }
    TXREP_RETURN_IF_ERROR(tm.WaitIdle());
    TXREP_RETURN_IF_ERROR(tm.CheckInvariants());
    stats = tm.stats();
  }
  set_failure_rate(0.0);

  for (const std::shared_ptr<core::Transaction>& probe : blink_probes) {
    const Status probe_status = probe->Wait();
    // Unavailable (failure injection) and Aborted (wedged optimistic
    // traversal on a stale buffer) are expected terminal states; anything
    // else means the optimistic read path returned wrong data.
    if (!probe_status.ok() && !probe_status.IsUnavailable() &&
        !probe_status.IsAborted()) {
      return Status::FailedPrecondition("blink probe failed: " +
                                        probe_status.ToString());
    }
  }

  const std::string diff =
      DiffDumps(serial_store.Dump(), concurrent_store->Dump());
  if (!diff.empty()) {
    return Status::FailedPrecondition(
        "concurrent replay diverged from serial replay: " + diff);
  }

  if (tracer != nullptr) {
    // The workload commits LSNs 1..LastLsn densely, so the period guarantees
    // sampled transactions — an empty recorder means the tracing path was
    // silently bypassed, not that nothing qualified.
    const uint64_t last_lsn = db.log().LastLsn();
    if (last_lsn >= tracer->sample_every() && tracer->Dump().empty()) {
      return Status::Internal(
          "traced schedule recorded no spans (sample_every=" +
          std::to_string(tracer->sample_every()) + ", last_lsn=" +
          std::to_string(last_lsn) + ")");
    }
  }

  if (report != nullptr) {
    report->transactions_replayed += stats.completed;
    report->conflicts += stats.conflicts;
    report->restarts += stats.restarts;
    // Sampled deep audit (structure + logical content, not just bytes).
    const int index = report->schedules_run;
    if (options_.audit_every > 0 && index % options_.audit_every == 0) {
      TXREP_RETURN_IF_ERROR(
          CheckReplicaEquivalence(*concurrent_store, db, translator));
    }
  }

  if (options_.crash_restart) {
    TXREP_RETURN_IF_ERROR(
        RunCrashRestart(seed, db, translator, serial_store.Dump()));
  }
  if (options_.wire) {
    TXREP_RETURN_IF_ERROR(
        RunWire(seed, db, config.max_node_keys, serial_store.Dump()));
  }
  if (options_.opt_latch) {
    TXREP_RETURN_IF_ERROR(
        RunOptLatchHammer(seed, config.max_node_keys, report));
  }
  return Status::OK();
}

Status ScheduleExplorer::RunOptLatchHammer(uint64_t seed, size_t max_node_keys,
                                           ScheduleReport* report) {
  // A private random stream so the hammer's knobs never perturb the main
  // schedule derivation.
  Random rng(seed ^ 0x0b114ae4a71a7c8dULL);

  // Service-time jitter is what creates reader/writer overlap on small
  // machines: a GET that sleeps mid-traversal gives writers time to split
  // the node under the reader's version snapshot.
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = static_cast<int64_t>(rng.Uniform(16));
  kv::InMemoryKvNode store(node_options);

  blink::BlinkTreeOptions tree_options;
  tree_options.max_node_keys = max_node_keys;
  blink::BlinkTree tree(&store, "S", "COST", tree_options);
  TXREP_RETURN_IF_ERROR(tree.Init());

  // Seed population at even values; writers insert odd values, so readers
  // can assert every seed entry stays visible throughout.
  const int initial = 32 + static_cast<int>(rng.Uniform(33));
  for (int i = 0; i < initial; ++i) {
    TXREP_RETURN_IF_ERROR(
        tree.Insert(Value::Int(2 * i), "seed-" + std::to_string(i)));
  }

  const int writers = 1 + static_cast<int>(rng.Uniform(2));
  const int readers = 2 + static_cast<int>(rng.Uniform(3));
  constexpr int kInsertsPerWriter = 24;
  std::atomic<int> writers_live{writers};
  // Per-thread result slots: no shared mutable state between hammer threads
  // beyond the tree and the store themselves.
  std::vector<Status> writer_status(writers);
  std::vector<Status> reader_status(readers);
  std::vector<std::thread> threads;
  threads.reserve(writers + readers);

  core::BatchDispatcher dispatcher;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Status status;
      for (int k = 0; k < kInsertsPerWriter && status.ok(); ++k) {
        const int64_t value =
            2 * static_cast<int64_t>(initial + k * writers + w) + 1;
        status = tree.Insert(Value::Int(value), "w" + std::to_string(w));
        if (status.ok() && k % 4 == 0) {
          // Row noise beside the tree: the batched apply path writing the
          // same store the readers traverse, like the TM's bottom pool
          // would during sustained apply.
          std::vector<kv::KvWrite> noise;
          for (int n = 0; n < 8; ++n) {
            noise.push_back(kv::KvWrite::Put(
                "noise/w" + std::to_string(w) + "/" +
                    std::to_string(k * 8 + n),
                "x"));
          }
          status = dispatcher.Dispatch(&store, noise);
        }
      }
      writer_status[w] = status;
      writers_live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      Status status;  // First failure ends the loop.
      do {
        Result<std::vector<blink::EntryKey>> scan =
            tree.RangeScanBounds(std::nullopt, std::nullopt);
        if (!scan.ok()) {
          status = scan.status();
          break;
        }
        if (scan->size() < static_cast<size_t>(initial)) {
          status = Status::FailedPrecondition(
              "hammer scan lost seed entries: " +
              std::to_string(scan->size()) + " < " + std::to_string(initial));
          break;
        }
        for (size_t i = 0; i + 1 < scan->size() && status.ok(); ++i) {
          if (!((*scan)[i] < (*scan)[i + 1])) {
            status = Status::FailedPrecondition(
                "hammer scan unsorted or duplicated at index " +
                std::to_string(i));
          }
        }
        if (!status.ok()) break;
        Result<bool> present =
            tree.Contains(Value::Int(2 * r), "seed-" + std::to_string(r));
        if (!present.ok()) {
          status = present.status();
          break;
        }
        if (!*present) {
          status = Status::FailedPrecondition(
              "hammer lookup lost seed entry " + std::to_string(2 * r));
          break;
        }
        Result<size_t> count = tree.EntryCount();
        if (!count.ok()) {
          status = count.status();
          break;
        }
        if (*count < static_cast<size_t>(initial)) {
          status = Status::FailedPrecondition(
              "hammer count below seed population: " +
              std::to_string(*count) + " < " + std::to_string(initial));
          break;
        }
      } while (writers_live.load(std::memory_order_acquire) > 0);
      reader_status[r] = status;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& status : writer_status) TXREP_RETURN_IF_ERROR(status);
  for (const Status& status : reader_status) TXREP_RETURN_IF_ERROR(status);

  // Quiesced audits: structure, latch words, and exact accounting (every
  // insert landed exactly once — the split-safe count must agree).
  TXREP_RETURN_IF_ERROR(tree.Validate());
  TXREP_RETURN_IF_ERROR(tree.AuditLatches());
  TXREP_ASSIGN_OR_RETURN(size_t count, tree.EntryCount());
  const size_t expected =
      static_cast<size_t>(initial) +
      static_cast<size_t>(writers) * static_cast<size_t>(kInsertsPerWriter);
  if (count != expected) {
    return Status::FailedPrecondition(
        "hammer entry count " + std::to_string(count) + " != expected " +
        std::to_string(expected));
  }
  for (int i = 0; i < initial; ++i) {
    TXREP_ASSIGN_OR_RETURN(
        bool present,
        tree.Contains(Value::Int(2 * i), "seed-" + std::to_string(i)));
    if (!present) {
      return Status::FailedPrecondition("hammer lost seed entry " +
                                        std::to_string(2 * i));
    }
  }

  if (report != nullptr) {
    const blink::BlinkTreeStats tree_stats = tree.stats();
    report->blink_read_events += tree_stats.read_retries +
                                 tree_stats.read_spins +
                                 tree_stats.move_rights +
                                 tree_stats.read_restarts;
  }
  return Status::OK();
}

Status ScheduleExplorer::RunWire(uint64_t seed, rel::Database& db,
                                 size_t max_node_keys,
                                 const kv::StoreDump& serial_dump) {
  const uint64_t last_lsn = db.log().LastLsn();
  if (last_lsn == 0) return Status::OK();
  // A private random stream so enabling wire exploration does not perturb
  // the main schedule derivation (seeds stay reproducible across modes).
  Random rng(seed ^ 0x3157a11c0ffee5ccULL);

  mw::Broker broker;
  net::EndpointOptions endpoint_options;
  // Retention must span the whole log: the remote replica bootstraps from
  // LSN 0 and the post-kill resume replays retained batches.
  endpoint_options.retention_capacity = 4096;
  // Small bounds so the credit/queue backpressure machinery actually
  // engages inside the schedule.
  endpoint_options.session_queue_capacity = 1 + rng.Uniform(8);
  endpoint_options.transport.send_queue_capacity = 1 + rng.Uniform(8);
  net::NetEndpoint endpoint(&broker, endpoint_options);
  endpoint.SetCatalog(codec::EncodeCatalog(db.catalog()));
  // Unwind order: the broker's delivery thread calls into the endpoint
  // (fanout) and can block on a session queue — end the sessions, then the
  // broker, before either object dies.
  struct Teardown {
    net::NetEndpoint* endpoint;
    mw::Broker* broker;
    ~Teardown() {
      endpoint->Stop();
      broker->Shutdown();
    }
  } teardown{&endpoint, &broker};

  RemoteReplicaOptions replica_options;
  replica_options.socket_factory = [&endpoint]() -> Result<net::Socket> {
    TXREP_ASSIGN_OR_RETURN(auto pair, net::Socket::CreatePair());
    TXREP_RETURN_IF_ERROR(endpoint.ServeSocket(std::move(pair.first)));
    return std::move(pair.second);
  };
  replica_options.subscription.initial_credits = 1 + rng.Uniform(8);
  replica_options.subscription.queue_capacity = rng.Uniform(4);
  replica_options.subscription.reconnect_backoff_micros = 1000;
  replica_options.blink.max_node_keys = max_node_keys;
  replica_options.cluster.num_nodes =
      1 + static_cast<int>(rng.Uniform(4));
  RemoteReplica replica(std::move(replica_options));
  TXREP_RETURN_IF_ERROR(replica.Start());

  mw::PublisherOptions publisher_options;
  publisher_options.batch_size = 1 + rng.Uniform(8);
  mw::PublisherAgent publisher(&db.log(), &broker, publisher_options);

  // First act: ship until the seed's kill point crossed the wire and the
  // replica applied it, then hard-kill the connection — from whichever side
  // the seed picks.
  const uint64_t drop_lsn = 1 + rng.Uniform(last_lsn);
  const bool server_side_kill = rng.Bernoulli(0.5);
  while (publisher.shipped_lsn() < drop_lsn) {
    TXREP_RETURN_IF_ERROR(publisher.PumpOnce().status());
  }
  if (!replica.WaitForLsn(drop_lsn)) {
    return Status::Internal("wire replica stopped before the kill point: " +
                            replica.health().ToString());
  }
  if (server_side_kill) {
    endpoint.DropSessions();
  } else {
    replica.subscription()->InjectDisconnect();
  }

  // Second act: ship the rest; the subscriber must reconnect, resume from
  // its high-water LSN, dedup the replayed retention and catch up.
  TXREP_RETURN_IF_ERROR(publisher.PumpAll());
  if (!replica.WaitForLsn(last_lsn)) {
    return Status::Internal("wire replica stopped before catching up: " +
                            replica.health().ToString());
  }
  for (int i = 0; replica.subscription()->connects() < 2 && i < 5000; ++i) {
    SleepForMicros(1000);
  }
  if (replica.subscription()->connects() < 2) {
    return Status::Internal("subscriber never reconnected after the kill");
  }
  TXREP_RETURN_IF_ERROR(replica.health());

  const std::string diff = DiffDumps(serial_dump, replica.cluster().Dump());
  if (!diff.empty()) {
    return Status::FailedPrecondition(
        "wire replay diverged from serial replay: " + diff);
  }
  replica.Stop();
  return Status::OK();
}

Status ScheduleExplorer::RunCrashRestart(uint64_t seed, rel::Database& db,
                                         const qt::QueryTranslator& translator,
                                         const kv::StoreDump& serial_dump) {
  if (options_.scratch_dir.empty()) {
    return Status::InvalidArgument("crash_restart requires scratch_dir");
  }
  // A private random stream so adding crash exploration does not perturb
  // the main schedule derivation (seeds stay reproducible across modes).
  Random rng(seed ^ 0x9e3779b97f4a7c15ULL);

  const uint64_t last_lsn = db.log().LastLsn();
  if (last_lsn == 0) return Status::OK();
  const std::string dir =
      options_.scratch_dir + "/seed-" + std::to_string(seed);
  TXREP_RETURN_IF_ERROR(recov::RemoveDirRecursive(dir));
  TXREP_RETURN_IF_ERROR(recov::EnsureDir(dir));

  // Seed-derived crash point: the TM applies LSNs [1, crash_lsn], takes a
  // checkpoint, and then the whole replica vanishes.
  const uint64_t crash_lsn = 1 + rng.Uniform(last_lsn);

  {
    kv::InMemoryKvNode store;
    TXREP_RETURN_IF_ERROR(translator.InitializeIndexes(&store));
    core::TmOptions tm_options;
    tm_options.top_threads = 2;
    tm_options.bottom_threads = 2;
    if (options_.batched_apply) {
      tm_options.apply_batch = ToDispatchOptions(DeriveBatchConfig(seed));
    }
    core::TransactionManager tm(&store, &translator, tm_options);
    for (rel::LogTransaction& txn : db.log().ReadSince(0, crash_lsn)) {
      tm.SubmitUpdate(std::move(txn));
    }
    TXREP_RETURN_IF_ERROR(tm.WaitIdle());
    if (tm.last_applied_lsn() != crash_lsn) {
      return Status::Internal(
          "TM applied prefix ends at " +
          std::to_string(tm.last_applied_lsn()) + ", expected " +
          std::to_string(crash_lsn));
    }

    recov::CheckpointWriter writer(dir);
    // Seed-derived protocol fault: some schedules first suffer a checkpoint
    // attempt that dies mid-write (torn manifest, or a crash between
    // snapshot files). Recovery below must ignore its debris.
    const uint64_t fault_kind = rng.Uniform(3);
    if (fault_kind != 0 && crash_lsn > 1) {
      recov::CheckpointFaults faults;
      if (fault_kind == 1) {
        faults.tear_manifest = true;
      } else {
        faults.fail_after_files = 0;
      }
      writer.set_faults(faults);
      Result<recov::CheckpointStats> faulted =
          writer.Write(crash_lsn - 1, std::vector<kv::KvStore*>{&store});
      if (faulted.ok()) {
        return Status::Internal("injected checkpoint fault did not fail");
      }
      writer.set_faults(recov::CheckpointFaults{});
    }
    TXREP_RETURN_IF_ERROR(
        writer.Write(crash_lsn, std::vector<kv::KvStore*>{&store}).status());
  }  // <- crash: the live store and TM are gone; only `dir` survives.

  // Restart: a process-equivalent recovers from the newest usable
  // checkpoint and replays the log tail serially.
  TXREP_ASSIGN_OR_RETURN(recov::LoadedCheckpoint checkpoint,
                         recov::LoadLatestCheckpoint(dir, nullptr));
  if (checkpoint.manifest.snapshot_epoch != crash_lsn) {
    return Status::Internal(
        "recovery picked epoch " +
        std::to_string(checkpoint.manifest.snapshot_epoch) + ", expected " +
        std::to_string(crash_lsn));
  }
  kv::InMemoryKvNode recovered;
  TXREP_RETURN_IF_ERROR(recov::InstallCheckpoint(
      checkpoint, std::vector<kv::KvStore*>{&recovered}));
  std::vector<rel::LogTransaction> tail =
      db.log().ReadSince(checkpoint.manifest.snapshot_epoch);
  if (!tail.empty() &&
      tail.front().lsn != checkpoint.manifest.snapshot_epoch + 1) {
    return Status::Corruption(
        "log tail gap after epoch " +
        std::to_string(checkpoint.manifest.snapshot_epoch));
  }
  core::BatchDispatchOptions tail_dispatch;
  if (options_.batched_apply) {
    tail_dispatch = ToDispatchOptions(DeriveBatchConfig(seed));
  }
  core::SerialApplier tail_applier(&recovered, &translator, /*metrics=*/nullptr,
                                   tail_dispatch);
  TXREP_RETURN_IF_ERROR(tail_applier.ApplyBatch(tail));

  const std::string diff = DiffDumps(serial_dump, recovered.Dump());
  if (!diff.empty()) {
    return Status::FailedPrecondition(
        "crash-restart replica diverged from serial replay: " + diff);
  }
  return recov::RemoveDirRecursive(dir);
}

Status ScheduleExplorer::RunOne(uint64_t seed) {
  return RunOneInternal(seed, nullptr);
}

ScheduleReport ScheduleExplorer::Run() {
  ScheduleReport report;
  for (int i = 0; i < options_.schedules; ++i) {
    const uint64_t seed = options_.base_seed + static_cast<uint64_t>(i);
    Status status = RunOneInternal(seed, &report);
    ++report.schedules_run;
    if (!status.ok()) {
      report.failures.push_back(ScheduleFailure{seed, status.ToString()});
    }
  }
  return report;
}

std::string ScheduleReport::Summary() const {
  std::string summary = "schedules=" + std::to_string(schedules_run) +
                        " txns=" + std::to_string(transactions_replayed) +
                        " conflicts=" + std::to_string(conflicts) +
                        " restarts=" + std::to_string(restarts);
  if (blink_read_events > 0) {
    summary += " blink_reads=" + std::to_string(blink_read_events);
  }
  summary += " failures=" + std::to_string(failures.size());
  return summary;
}

}  // namespace txrep::check
