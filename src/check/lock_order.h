#ifndef TXREP_CHECK_LOCK_ORDER_H_
#define TXREP_CHECK_LOCK_ORDER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace txrep::check {

/// Runtime lock-order checker (DESIGN.md §8).
///
/// Records, per thread, the chain of currently-held check::Mutex instances
/// and maintains a global directed graph over mutex *names* ("holding A,
/// acquired B" adds the edge A -> B). An acquisition that would close a cycle
/// in that graph is a potential deadlock — two threads could take the same
/// pair of locks in opposite orders — and is reported the *first* time the
/// inverted order is even attempted, long before an actual deadlock needs
/// the unlucky interleaving.
///
/// Granularity is the mutex name (one graph node per annotated lock site),
/// so all instances of e.g. "bq.mu" collapse into one node. Same-name
/// nesting (holding one "bq.mu" while acquiring another) is reported as a
/// violation too: distinct instances behind one name have no defined order.
/// Keyed per-object latches with their own protocol (KeyedMutex) stay
/// outside this graph.
///
/// check::Mutex calls the hooks only in TXREP_DEBUG_CHECKS builds (the
/// `debug-checks` CI flavor), where a violation aborts the process with the
/// offending chain. The registry itself is always compiled and directly
/// usable, so its tests run in every flavor.
///
/// Thread-safe. The registry deliberately uses a raw std::mutex internally —
/// it cannot check itself.
class LockOrderRegistry {
 public:
  /// Process-wide instance used by the check::Mutex hooks.
  static LockOrderRegistry& Instance();

  /// Called before blocking on `name` (instance `id`). Records the order
  /// edges from every lock the calling thread already holds. Returns a
  /// human-readable violation description if an edge closes a cycle (or
  /// nests a name on itself); nullopt when the order is consistent with
  /// everything seen so far. The offending edge is *not* added, so one bad
  /// call site keeps reporting instead of poisoning the graph.
  std::optional<std::string> NoteAcquire(const void* id, const char* name);

  /// Called after the lock is actually held; pushes it on the thread's chain.
  void NoteAcquired(const void* id, const char* name);

  /// Called on unlock; removes the instance from the thread's chain (it need
  /// not be the innermost — out-of-order releases are legal).
  void NoteReleased(const void* id);

  /// Names currently held by the calling thread, outermost first.
  std::vector<std::string> HeldByThisThread() const;

  /// Number of distinct order edges observed (for tests).
  size_t EdgeCount() const;

  /// Forgets all edges (not the per-thread chains). Test isolation only.
  void ClearEdges();

 private:
  LockOrderRegistry() = default;

  struct Impl;
  Impl& impl() const;
};

/// Aborts with `violation` via the logging sink. Called by the Mutex hooks;
/// split out so tests can cover the message formatting without dying.
[[noreturn]] void DieOnLockOrderViolation(const std::string& violation);

}  // namespace txrep::check

#endif  // TXREP_CHECK_LOCK_ORDER_H_
