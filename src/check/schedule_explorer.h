#ifndef TXREP_CHECK_SCHEDULE_EXPLORER_H_
#define TXREP_CHECK_SCHEDULE_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/kv_types.h"

namespace txrep::rel {
class Database;
}
namespace txrep::qt {
class QueryTranslator;
}

namespace txrep::check {

/// Knobs of the schedule-exploration harness.
struct ScheduleExplorerOptions {
  /// Schedule i explores seed base_seed + i.
  uint64_t base_seed = 1;

  /// How many seeds to explore. Each seed derives a complete configuration:
  /// workload shape (hot-row count, statement mix), TM thread counts, store
  /// service time, failure injection, GC threshold, buffer/filter toggles
  /// and the read-only interleave rate.
  int schedules = 200;

  /// Update transactions generated per schedule.
  int txns_per_schedule = 40;

  /// Run the full replica-equivalence audit (rows + hash postings + B-link
  /// structure) every Nth schedule in addition to the byte-equality check.
  /// 0 disables the audit. The audit is an order of magnitude slower than
  /// the dump comparison, hence the sampling.
  int audit_every = 8;

  /// Crash-restart mode (requires `scratch_dir`): after the concurrent /
  /// serial comparison, each schedule additionally replays through a TM that
  /// "crashes" at a seed-derived LSN right after taking a checkpoint —
  /// optionally preceded by a seed-derived faulted checkpoint attempt (torn
  /// manifest or crash mid-snapshot-files) whose debris must be ignored. A
  /// fresh process-equivalent then recovers from the newest usable
  /// checkpoint, replays the log tail, and must be byte-identical to serial
  /// replay.
  bool crash_restart = false;

  /// Directory for crash-restart checkpoint files; each seed uses a private
  /// subdirectory that is wiped before and after the schedule.
  std::string scratch_dir;

  /// Traced mode: the concurrent TM replays with a live Tracer whose
  /// sampling period is drawn from a private random stream (so existing
  /// seeds reproduce identically in either mode), with contexts minted per
  /// LSN exactly as the pipeline would. The byte-equality oracle is
  /// unchanged — a diverging dump means tracing perturbed replay — and a
  /// schedule whose period guarantees sampled transactions must leave spans
  /// in the flight recorder (else the tracing path silently dropped out).
  bool traced = false;

  /// Batched-apply mode: the concurrent replica becomes a seed-derived
  /// KvCluster (node count and dispatch threads drawn from the seed) and the
  /// TM's write-set dispatcher gets a seed-derived chunk size / adaptive
  /// flag, so the whole MultiWrite fan-out path joins the explored state
  /// space. The batched knobs come from a private random stream, so existing
  /// seeds reproduce identically in either mode. The serial reference pins
  /// its dispatcher to batch size 1 — op-at-a-time ground truth through the
  /// batch API.
  bool batched_apply = false;

  /// Wire mode: each schedule additionally replays through the full
  /// cross-process wire boundary — publisher → broker → NetEndpoint →
  /// socketpair frames → NetSubscription → remote replica — with frame
  /// batch size, queue bounds, credit window and a kill point all drawn
  /// from a private random stream (existing seeds reproduce identically in
  /// either mode). Mid-stream the connection is hard-killed (server
  /// DropSessions or client InjectDisconnect, seed's choice) and the
  /// subscriber must reconnect, resume from its high-water LSN, dedup the
  /// replayed retention, and still end byte-identical to serial replay —
  /// the paper's replica-equivalence oracle applied across the wire.
  bool wire = false;

  /// Optimistic-latch mode: exercises the B-link version-latch protocol
  /// (DESIGN.md §14) from two directions. (a) During the concurrent replay a
  /// seed-derived fraction of the interleaved read-only transactions become
  /// *index probes*: each builds an ephemeral BlinkTree over its buffered
  /// view and runs a full range scan, so the optimistic read path sees the
  /// torn cross-key snapshots a transaction buffer can serve (scans must
  /// still come back sorted; Aborted is legal and flows into the TM's
  /// restart machinery). (b) After the replay, a scratch-store hammer runs
  /// seed-derived reader threads (scans, point lookups, entry counts)
  /// against writer threads inserting through the tree while a
  /// BatchDispatcher applies row noise to the same store; readers must never
  /// observe a missing seed entry or unsorted output, and the quiesced tree
  /// must pass the structural + latch audits with an exact entry count. The
  /// knobs come from a private random stream, so existing seeds reproduce
  /// identically in either mode.
  bool opt_latch = false;

  /// TPC-C mode: the seed's workload becomes a TPC-C-lite deployment
  /// (src/workload/tpcc.h) instead of the single-table synthetic — schema +
  /// population + a NewOrder/Payment write stream whose warehouse count,
  /// district/customer/item scale, warehouse Zipf skew, mix weights and
  /// remote-line fraction are all drawn from a private random stream. The
  /// contended district counters and cross-table multi-statement commits put
  /// multi-table write sets (and their class signatures) into the explored
  /// state space; interleaved read-only probes target CUSTOMER rows and
  /// opt_latch index probes move to the churning STOCK.S_QUANTITY index.
  /// Composes with crash_restart, batched_apply, traced and wire.
  bool tpcc = false;
};

/// One schedule that diverged from serial replay (or tripped an invariant).
struct ScheduleFailure {
  uint64_t seed = 0;
  std::string detail;
};

/// Aggregate outcome of an exploration run.
struct ScheduleReport {
  int schedules_run = 0;
  int64_t transactions_replayed = 0;
  /// Conflict/restart totals across all schedules — a health signal for the
  /// exploration itself: if these are ~0 the schedules are not adversarial
  /// enough to mean anything.
  int64_t conflicts = 0;
  int64_t restarts = 0;
  /// Optimistic B-link read events (validation retries + lock-bit spins +
  /// move-rights + root restarts) accumulated by opt_latch-mode hammers —
  /// the health signal that the version-latch protocol actually engaged
  /// (~0 means readers never raced a writer).
  int64_t blink_read_events = 0;
  std::vector<ScheduleFailure> failures;

  bool ok() const { return failures.empty(); }

  /// One-line summary, e.g.
  /// "schedules=200 txns=8000 conflicts=1234 restarts=1301 failures=0".
  std::string Summary() const;
};

/// Randomized schedule exploration for the Transaction Manager (DESIGN.md
/// §8): for each seed, generate a randomized insert/update/delete workload
/// (with hash- and range-index maintenance so index objects join the
/// conflict sets), replay it twice — once serially, once through a TM whose
/// every knob is drawn from the seed — and require the two replicas to be
/// byte-identical. Adversarial pressure comes from hot-row contention, store
/// service-time jitter, transient-failure injection (exercising the restart
/// path) and interleaved read-only transactions; TM bookkeeping is audited
/// via CheckInvariants() after every schedule, and the full replica-
/// equivalence audit runs on a sample of schedules.
///
/// A divergence means Algorithm 1 committed a non-serializable order — the
/// exact bug class the paper's design must exclude.
class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ScheduleExplorerOptions options = {});

  /// Explores all schedules. Infrastructure failures (a schedule that cannot
  /// even run) are reported as failures too, never thrown.
  ScheduleReport Run();

  /// Runs the single schedule derived from `seed`. OK when concurrent replay
  /// matches serial replay and all invariants hold.
  Status RunOne(uint64_t seed);

 private:
  /// RunOne body that also accumulates stats into `report` (null ok).
  Status RunOneInternal(uint64_t seed, ScheduleReport* report);

  /// Crash-restart phase of one schedule: checkpoint at a seed-derived
  /// point, discard the live replica, recover from disk + log tail, compare
  /// against `serial_dump`.
  Status RunCrashRestart(uint64_t seed, rel::Database& db,
                         const qt::QueryTranslator& translator,
                         const kv::StoreDump& serial_dump);

  /// Wire phase of one schedule: replay the log over a socketpair into a
  /// RemoteReplica (catalog over the wire), kill the connection mid-stream,
  /// and compare the reconnected replica against `serial_dump`.
  /// `max_node_keys` pins the remote B-link layout to the serial one.
  Status RunWire(uint64_t seed, rel::Database& db, size_t max_node_keys,
                 const kv::StoreDump& serial_dump);

  /// Optimistic-latch hammer of one schedule: seed-derived reader threads
  /// run scans / lookups / counts through one shared BlinkTree on a scratch
  /// store while writer threads insert through the tree and a
  /// BatchDispatcher applies row noise beside it; ends with the structural +
  /// latch audits and an exact entry count. Accumulates the tree's read
  /// events into `report` (null ok).
  Status RunOptLatchHammer(uint64_t seed, size_t max_node_keys,
                           ScheduleReport* report);

  const ScheduleExplorerOptions options_;
};

}  // namespace txrep::check

#endif  // TXREP_CHECK_SCHEDULE_EXPLORER_H_
