#ifndef TXREP_CHECK_INVARIANTS_H_
#define TXREP_CHECK_INVARIANTS_H_

#include "blink/blink_tree.h"
#include "common/status.h"
#include "kv/kv_store.h"
#include "qt/query_translator.h"
#include "rel/database.h"

namespace txrep::check {

/// Structural audit of one B-link range index: sortedness, fanout arity,
/// level monotonicity, high-key bounds and right-chain termination of every
/// reachable node (delegates to BlinkTree::Validate), followed by a version-
/// latch audit (BlinkTree::AuditLatches — no latch held, no reachable node
/// obsolete). Run it on a quiesced tree — concurrent writers make a
/// structural snapshot meaningless.
Status CheckBlinkTreeInvariants(blink::BlinkTree& tree);

/// Full replica-equivalence audit (DESIGN.md §8): every row object present
/// and byte-equal to the database row, hash-index postings exactly the
/// matching row keys, every B-link range index structurally valid with
/// exactly the expected entries, no stray objects. Folds the consistency
/// checker's violation list into one FailedPrecondition status so callers
/// can TXREP_RETURN_IF_ERROR it. Pair with a quiesced pipeline.
Status CheckReplicaEquivalence(kv::KvStore& store, rel::Database& db,
                               const qt::QueryTranslator& translator);

}  // namespace txrep::check

#endif  // TXREP_CHECK_INVARIANTS_H_
