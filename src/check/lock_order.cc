#include "check/lock_order.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

#include "common/logging.h"

namespace txrep::check {

namespace {

struct HeldLock {
  const void* id;
  const char* name;
};

/// Chain of locks held by this thread, outermost first.
thread_local std::vector<HeldLock> t_held;

std::string ChainString(const std::vector<HeldLock>& chain) {
  std::string out;
  for (const HeldLock& held : chain) {
    if (!out.empty()) out += " -> ";
    out += held.name;
  }
  return out;
}

}  // namespace

struct LockOrderRegistry::Impl {
  // Raw std::mutex on purpose: the checker cannot run on itself.
  mutable std::mutex mu;
  // Directed order edges over mutex names: edges["a"] contains "b" iff some
  // thread held "a" while acquiring "b".
  std::map<std::string, std::set<std::string>> edges;

  /// True iff `to` is reachable from `from` over recorded edges.
  bool ReachableLocked(const std::string& from, const std::string& to) const {
    std::vector<const std::string*> stack = {&from};
    std::set<std::string> visited;
    while (!stack.empty()) {
      const std::string& node = *stack.back();
      stack.pop_back();
      if (node == to) return true;
      if (!visited.insert(node).second) continue;
      auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const std::string& next : it->second) stack.push_back(&next);
    }
    return false;
  }
};

LockOrderRegistry::Impl& LockOrderRegistry::impl() const {
  static Impl* impl = new Impl();  // Leaked: outlives static-destruction races.
  return *impl;
}

LockOrderRegistry& LockOrderRegistry::Instance() {
  static LockOrderRegistry* instance = new LockOrderRegistry();
  return *instance;
}

std::optional<std::string> LockOrderRegistry::NoteAcquire(const void* id,
                                                          const char* name) {
  (void)id;
  if (name == nullptr || t_held.empty()) return std::nullopt;
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const HeldLock& held : t_held) {
    const std::string from(held.name);
    const std::string to(name);
    if (from == to) {
      return "lock-order violation: acquiring \"" + to +
             "\" while already holding a lock of the same name (chain: " +
             ChainString(t_held) + " -> " + to + ")";
    }
    // Adding from -> to closes a cycle iff `from` is already reachable
    // from `to`.
    if (state.ReachableLocked(to, from)) {
      return "lock-order violation: acquiring \"" + to +
             "\" while holding \"" + from + "\" inverts the established \"" +
             to + "\" -> ... -> \"" + from + "\" order (chain: " +
             ChainString(t_held) + " -> " + to + ")";
    }
    state.edges[from].insert(to);
  }
  return std::nullopt;
}

void LockOrderRegistry::NoteAcquired(const void* id, const char* name) {
  if (name == nullptr) return;
  t_held.push_back(HeldLock{id, name});
}

void LockOrderRegistry::NoteReleased(const void* id) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->id == id) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<std::string> LockOrderRegistry::HeldByThisThread() const {
  std::vector<std::string> names;
  names.reserve(t_held.size());
  for (const HeldLock& held : t_held) names.emplace_back(held.name);
  return names;
}

size_t LockOrderRegistry::EdgeCount() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  size_t count = 0;
  for (const auto& [from, tos] : state.edges) count += tos.size();
  return count;
}

void LockOrderRegistry::ClearEdges() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.edges.clear();
}

void DieOnLockOrderViolation(const std::string& violation) {
  TXREP_LOG(kError) << violation;
  std::abort();
}

}  // namespace txrep::check
