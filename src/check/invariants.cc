#include "check/invariants.h"

#include "qt/consistency_checker.h"

namespace txrep::check {

Status CheckBlinkTreeInvariants(blink::BlinkTree& tree) {
  return tree.Validate();
}

Status CheckReplicaEquivalence(kv::KvStore& store, rel::Database& db,
                               const qt::QueryTranslator& translator) {
  Result<qt::ConsistencyReport> report =
      qt::CheckReplicaConsistency(store, db, translator);
  TXREP_RETURN_IF_ERROR(report.status());
  if (report->consistent()) return Status::OK();
  std::string message = report->Summary();
  for (const std::string& violation : report->violations) {
    message += "; ";
    message += violation;
  }
  return Status::FailedPrecondition(std::move(message));
}

}  // namespace txrep::check
