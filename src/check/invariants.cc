#include "check/invariants.h"

#include "qt/consistency_checker.h"

namespace txrep::check {

Status CheckBlinkTreeInvariants(blink::BlinkTree& tree) {
  TXREP_RETURN_IF_ERROR(tree.Validate());
  // Structure is sound; now audit the synchronization layer — on a quiesced
  // tree no version latch may be held and no reachable node may be marked
  // obsolete (a leaked lock bit means a writer path returned unlatched).
  return tree.AuditLatches();
}

Status CheckReplicaEquivalence(kv::KvStore& store, rel::Database& db,
                               const qt::QueryTranslator& translator) {
  Result<qt::ConsistencyReport> report =
      qt::CheckReplicaConsistency(store, db, translator);
  TXREP_RETURN_IF_ERROR(report.status());
  if (report->consistent()) return Status::OK();
  std::string message = report->Summary();
  for (const std::string& violation : report->violations) {
    message += "; ";
    message += violation;
  }
  return Status::FailedPrecondition(std::move(message));
}

}  // namespace txrep::check
