#ifndef TXREP_CHECK_ANNOTATIONS_H_
#define TXREP_CHECK_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (DESIGN.md §8).
///
/// Every mutex-protected field in the codebase is annotated with
/// TXREP_GUARDED_BY, every `*Locked()` helper with TXREP_REQUIRES, and the
/// check::Mutex / check::MutexLock wrappers carry the capability attributes,
/// so that a clang build with `-Werror=thread-safety` (the `annotations`
/// flavor of scripts/ci.sh --matrix) statically proves the locking
/// discipline. Under compilers without the attributes (GCC) the macros expand
/// to nothing and the code is unchanged.
///
/// Naming follows the "modern" capability spellings of
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TXREP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef TXREP_THREAD_ANNOTATION
#define TXREP_THREAD_ANNOTATION(x)  // No-op outside clang.
#endif

/// Marks a class as a lockable capability, e.g.
///   class TXREP_CAPABILITY("mutex") Mutex { ... };
#define TXREP_CAPABILITY(x) TXREP_THREAD_ANNOTATION(capability(x))

/// Marks a RAII class that acquires in its constructor / releases in its
/// destructor (MutexLock).
#define TXREP_SCOPED_CAPABILITY TXREP_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given mutex:
///   std::deque<T> items_ TXREP_GUARDED_BY(mu_);
#define TXREP_GUARDED_BY(x) TXREP_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer itself) is guarded by the given mutex.
#define TXREP_PT_GUARDED_BY(x) TXREP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the given mutex(es) — the
/// convention for `FooLocked()` helpers.
#define TXREP_REQUIRES(...) \
  TXREP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) flavour of TXREP_REQUIRES.
#define TXREP_REQUIRES_SHARED(...) \
  TXREP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex and holds it past return (Mutex::Lock,
/// MutexLock constructor).
#define TXREP_ACQUIRE(...) \
  TXREP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define TXREP_ACQUIRE_SHARED(...) \
  TXREP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex (Mutex::Unlock, MutexLock destructor).
#define TXREP_RELEASE(...) \
  TXREP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define TXREP_RELEASE_SHARED(...) \
  TXREP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the return value meaning
/// success, e.g. bool TryLock() TXREP_TRY_ACQUIRE(true).
#define TXREP_TRY_ACQUIRE(...) \
  TXREP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the given mutex held (prevents
/// self-deadlock on non-reentrant locks).
#define TXREP_EXCLUDES(...) TXREP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the mutex; informs the
/// static analysis without acquiring.
#define TXREP_ASSERT_CAPABILITY(x) \
  TXREP_THREAD_ANNOTATION(assert_capability(x))

/// Returns a reference/pointer to the given capability (accessor functions).
#define TXREP_RETURN_CAPABILITY(x) TXREP_THREAD_ANNOTATION(lock_returned(x))

/// Static lock-order declaration: this mutex must be acquired after `...`.
#define TXREP_ACQUIRED_AFTER(...) \
  TXREP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define TXREP_ACQUIRED_BEFORE(...) \
  TXREP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Escape hatch for functions whose locking pattern the analysis cannot
/// express (adopt-lock tricks, conditional locking). Use sparingly; every use
/// should cite why.
#define TXREP_NO_THREAD_SAFETY_ANALYSIS \
  TXREP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // TXREP_CHECK_ANNOTATIONS_H_
