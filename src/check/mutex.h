#ifndef TXREP_CHECK_MUTEX_H_
#define TXREP_CHECK_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "check/annotations.h"

#ifdef TXREP_DEBUG_CHECKS
#include "check/lock_order.h"
#endif

namespace txrep::check {

/// Annotated wrapper around std::mutex — the only mutex the codebase uses
/// outside src/check/ (enforced by scripts/lint.sh). It buys two things over
/// the raw type:
///
///  - clang thread-safety analysis: the capability attributes plus the
///    TXREP_GUARDED_BY field annotations let `-Werror=thread-safety` prove
///    at compile time that guarded state is only touched under its lock;
///  - runtime lock-order checking: in TXREP_DEBUG_CHECKS builds every
///    acquisition is recorded in the LockOrderRegistry and a cycle in the
///    acquisition-order graph (potential deadlock) aborts immediately.
///
/// `name` must be a string literal (it is stored, not copied) and names the
/// node in the lock-order graph; pass nullptr to opt a mutex out of order
/// checking (e.g. per-instance locks with an external ordering protocol).
class TXREP_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = nullptr) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TXREP_ACQUIRE() {
#ifdef TXREP_DEBUG_CHECKS
    auto violation = LockOrderRegistry::Instance().NoteAcquire(this, name_);
    if (violation.has_value()) DieOnLockOrderViolation(*violation);
#endif
    mu_.lock();
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteAcquired(this, name_);
#endif
  }

  void Unlock() TXREP_RELEASE() {
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteReleased(this);
#endif
    mu_.unlock();
  }

  bool TryLock() TXREP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifdef TXREP_DEBUG_CHECKS
    // A try-lock cannot deadlock, so no order check; still track it so locks
    // taken while it is held are ordered against it.
    LockOrderRegistry::Instance().NoteAcquired(this, name_);
#endif
    return true;
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* const name_;
};

/// RAII lock for a Mutex scope.
class TXREP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TXREP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TXREP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to one Mutex for its whole lifetime (the binding
/// is what lets Wait() carry a TXREP_REQUIRES annotation). Standard usage:
///
///   MutexLock lock(&mu_);
///   while (!ReadyLocked()) cv_.Wait();
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the bound mutex, blocks, reacquires. May wake
  /// spuriously — always wait in a predicate loop.
  void Wait() TXREP_REQUIRES(mu_) {
#ifdef TXREP_DEBUG_CHECKS
    // The wait releases the mutex; keep the per-thread chain truthful.
    LockOrderRegistry::Instance().NoteReleased(mu_);
#endif
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership returns to the caller's scope.
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteAcquired(mu_, mu_->name());
#endif
  }

  /// Timed wait: blocks at most `micros` microseconds. Returns false on
  /// timeout, true when notified (spurious wakes count as notified — always
  /// re-check the predicate either way).
  bool WaitForMicros(int64_t micros) TXREP_REQUIRES(mu_) {
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteReleased(mu_);
#endif
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(micros));
    lock.release();
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteAcquired(mu_, mu_->name());
#endif
    return status == std::cv_status::no_timeout;
  }

  /// Waits until `pred()` holds. `pred` runs under the bound mutex.
  template <typename Pred>
  void Await(Pred pred) TXREP_REQUIRES(mu_) {
    while (!pred()) Wait();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

/// Annotated wrapper around std::shared_mutex (reader/writer lock). Shared
/// (reader) acquisitions are deliberately left out of the lock-order graph:
/// they cannot form a two-lock deadlock among themselves, and the KV stripe
/// locks — the one user — are leaves.
class TXREP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name = nullptr) : name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TXREP_ACQUIRE() {
#ifdef TXREP_DEBUG_CHECKS
    auto violation = LockOrderRegistry::Instance().NoteAcquire(this, name_);
    if (violation.has_value()) DieOnLockOrderViolation(*violation);
#endif
    mu_.lock();
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteAcquired(this, name_);
#endif
  }

  void Unlock() TXREP_RELEASE() {
#ifdef TXREP_DEBUG_CHECKS
    LockOrderRegistry::Instance().NoteReleased(this);
#endif
    mu_.unlock();
  }

  void LockShared() TXREP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() TXREP_RELEASE_SHARED() { mu_.unlock_shared(); }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* const name_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class TXREP_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) TXREP_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() TXREP_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class TXREP_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) TXREP_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() TXREP_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace txrep::check

#endif  // TXREP_CHECK_MUTEX_H_
