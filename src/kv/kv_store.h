#ifndef TXREP_KV_KV_STORE_H_
#define TXREP_KV_KV_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kv/kv_types.h"

namespace txrep::kv {

/// Abstract key-value store with the standard PUT / GET / DELETE interface
/// (paper §3: "as long as the store provides standard PUT/GET/DELETE
/// interface ... it can be used in our system").
///
/// Contract required by the Transaction Manager (paper §5): *consistent
/// read-write* — each single-key operation is atomic and a completed write is
/// immediately visible to subsequent reads of that key.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites `key`.
  virtual Status Put(const Key& key, const Value& value) = 0;

  /// Returns the value, or NotFound.
  virtual Result<Value> Get(const Key& key) = 0;

  /// Removes `key`. Deleting an absent key is a no-op success (replication
  /// replay must be idempotent with respect to redundant deletes).
  virtual Status Delete(const Key& key) = 0;

  // --- batch operations (the batched-apply pipeline, DESIGN.md §10) --------
  //
  // One Multi* call is one round trip to the store: backends that simulate
  // service time charge a batch as a single slot occupancy of
  // `base + (k-1)·marginal` micros instead of `k` full round trips, which is
  // what lets replica replay keep up with the primary (STAR / C5 style
  // batched apply). Entries are processed in batch order, so per-key op
  // order inside a batch is exactly op-at-a-time order.
  //
  // Partial-failure contract: `applied` (optional) receives the number of
  // entries that took effect. On a non-OK return the batch may have applied
  // only some entries; WHICH entries is backend-defined and pinned by
  // kv_batch_property_test:
  //   - the default implementations and DiskKvNode stop at the first error
  //     (the applied entries are a prefix of the batch);
  //   - InMemoryKvNode attempts every entry (an injected transient failure
  //     skips just that entry) and returns the first error;
  //   - KvCluster fans sub-batches out per node; each node applies per its
  //     own contract and the first failing node's status (by node index) is
  //     returned.
  // Re-running a failed batch is always safe: PUT/DELETE are absolute, so
  // batch apply is idempotent — the retry contract the appliers rely on.

  /// Applies an ordered batch of puts/tombstones. Default: one Put/Delete
  /// per entry, stopping at the first error.
  virtual Status MultiWrite(std::span<const KvWrite> batch,
                            size_t* applied = nullptr) {
    if (applied != nullptr) *applied = 0;
    for (const KvWrite& w : batch) {
      Status status = w.tombstone ? Delete(w.key) : Put(w.key, w.value);
      if (!status.ok()) return status;
      if (applied != nullptr) ++*applied;
    }
    return Status::OK();
  }

  /// Inserts/overwrites every entry as one batch.
  virtual Status MultiPut(std::span<const std::pair<Key, Value>> entries,
                          size_t* applied = nullptr) {
    KvWriteBatch batch;
    batch.reserve(entries.size());
    for (const auto& [key, value] : entries) {
      batch.push_back(KvWrite::Put(key, value));
    }
    return MultiWrite(batch, applied);
  }

  /// Removes every key as one batch (absent keys are no-op successes, like
  /// Delete).
  virtual Status MultiDelete(std::span<const Key> keys,
                             size_t* applied = nullptr) {
    KvWriteBatch batch;
    batch.reserve(keys.size());
    for (const Key& key : keys) batch.push_back(KvWrite::Delete(key));
    return MultiWrite(batch, applied);
  }

  /// Reads every key as one batch. Results are positional (results[i] is
  /// keys[i]); an individual miss/failure is that entry's Result and never
  /// aborts the rest of the batch.
  virtual std::vector<Result<Value>> MultiGet(std::span<const Key> keys) {
    std::vector<Result<Value>> results;
    results.reserve(keys.size());
    for (const Key& key : keys) results.push_back(Get(key));
    return results;
  }

  /// True iff the key currently exists (no NotFound bookkeeping).
  virtual bool Contains(const Key& key) = 0;

  /// Number of live keys.
  virtual size_t Size() = 0;

  /// Full snapshot sorted by key, for state-equivalence checks and examples.
  /// Not meant to be cheap; do not call on hot paths.
  virtual StoreDump Dump() = 0;

  /// Removes every key, returning the store to its freshly-created state.
  /// Checkpoint install clears the target before loading a snapshot (tail
  /// replay is not idempotent against stale state). The default deletes key
  /// by key through the public interface; backends override with cheaper
  /// resets (a disk node truncates its log instead of appending tombstones).
  virtual Status Clear() {
    for (const auto& entry : Dump()) {
      TXREP_RETURN_IF_ERROR(Delete(entry.first));
    }
    return Status::OK();
  }
};

/// Aggregate operation counters exposed by the concrete stores.
struct KvStoreStats {
  int64_t gets = 0;
  int64_t puts = 0;
  int64_t deletes = 0;
  int64_t get_misses = 0;
  int64_t injected_failures = 0;
  /// Multi* calls serviced (each is one simulated round trip, however many
  /// ops it carried).
  int64_t batches = 0;

  KvStoreStats& operator+=(const KvStoreStats& other) {
    gets += other.gets;
    puts += other.puts;
    deletes += other.deletes;
    get_misses += other.get_misses;
    injected_failures += other.injected_failures;
    batches += other.batches;
    return *this;
  }
};

}  // namespace txrep::kv

#endif  // TXREP_KV_KV_STORE_H_
