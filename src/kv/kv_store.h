#ifndef TXREP_KV_KV_STORE_H_
#define TXREP_KV_KV_STORE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "kv/kv_types.h"

namespace txrep::kv {

/// Abstract key-value store with the standard PUT / GET / DELETE interface
/// (paper §3: "as long as the store provides standard PUT/GET/DELETE
/// interface ... it can be used in our system").
///
/// Contract required by the Transaction Manager (paper §5): *consistent
/// read-write* — each single-key operation is atomic and a completed write is
/// immediately visible to subsequent reads of that key.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites `key`.
  virtual Status Put(const Key& key, const Value& value) = 0;

  /// Returns the value, or NotFound.
  virtual Result<Value> Get(const Key& key) = 0;

  /// Removes `key`. Deleting an absent key is a no-op success (replication
  /// replay must be idempotent with respect to redundant deletes).
  virtual Status Delete(const Key& key) = 0;

  /// True iff the key currently exists (no NotFound bookkeeping).
  virtual bool Contains(const Key& key) = 0;

  /// Number of live keys.
  virtual size_t Size() = 0;

  /// Full snapshot sorted by key, for state-equivalence checks and examples.
  /// Not meant to be cheap; do not call on hot paths.
  virtual StoreDump Dump() = 0;

  /// Removes every key, returning the store to its freshly-created state.
  /// Checkpoint install clears the target before loading a snapshot (tail
  /// replay is not idempotent against stale state). The default deletes key
  /// by key through the public interface; backends override with cheaper
  /// resets (a disk node truncates its log instead of appending tombstones).
  virtual Status Clear() {
    for (const auto& entry : Dump()) {
      TXREP_RETURN_IF_ERROR(Delete(entry.first));
    }
    return Status::OK();
  }
};

/// Aggregate operation counters exposed by the concrete stores.
struct KvStoreStats {
  int64_t gets = 0;
  int64_t puts = 0;
  int64_t deletes = 0;
  int64_t get_misses = 0;
  int64_t injected_failures = 0;

  KvStoreStats& operator+=(const KvStoreStats& other) {
    gets += other.gets;
    puts += other.puts;
    deletes += other.deletes;
    get_misses += other.get_misses;
    injected_failures += other.injected_failures;
    return *this;
  }
};

}  // namespace txrep::kv

#endif  // TXREP_KV_KV_STORE_H_
