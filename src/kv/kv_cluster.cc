#include "kv/kv_cluster.h"

#include <algorithm>
#include <functional>

namespace txrep::kv {

KvCluster::KvCluster(KvClusterOptions options, obs::MetricsRegistry* metrics) {
  const int n = std::max(1, options.num_nodes);
  nodes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    KvNodeOptions node_options = options.node;
    // Give each node an independent failure stream.
    node_options.failure_seed = options.node.failure_seed + i * 0x9e3779b9ULL;
    nodes_.push_back(std::make_unique<InMemoryKvNode>(node_options, metrics, i));
  }
}

int KvCluster::NodeIndexFor(const Key& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % nodes_.size());
}

InMemoryKvNode& KvCluster::NodeFor(const Key& key) {
  return *nodes_[NodeIndexFor(key)];
}

Status KvCluster::Put(const Key& key, const Value& value) {
  return NodeFor(key).Put(key, value);
}

Result<Value> KvCluster::Get(const Key& key) { return NodeFor(key).Get(key); }

Status KvCluster::Delete(const Key& key) { return NodeFor(key).Delete(key); }

bool KvCluster::Contains(const Key& key) { return NodeFor(key).Contains(key); }

size_t KvCluster::Size() {
  size_t total = 0;
  for (auto& node : nodes_) total += node->Size();
  return total;
}

StoreDump KvCluster::Dump() {
  StoreDump dump;
  for (auto& node : nodes_) {
    StoreDump part = node->Dump();
    dump.insert(dump.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  std::sort(dump.begin(), dump.end());
  return dump;
}

KvStoreStats KvCluster::TotalStats() const {
  KvStoreStats total;
  for (const auto& node : nodes_) total += node->stats();
  return total;
}

}  // namespace txrep::kv
