#include "kv/kv_cluster.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <utility>

namespace txrep::kv {

namespace {

/// mkdir -p for the disk backend's log directory.
Status EnsureDirExists(const std::string& path) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Unavailable("mkdir failed for \"" + prefix +
                                 "\": " + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace

KvCluster::KvCluster(KvClusterOptions options, obs::MetricsRegistry* metrics)
    : options_(std::move(options)) {
  const int n = std::max(1, options_.num_nodes);
  nodes_.reserve(n);
  is_disk_.reserve(n);

  if (options_.backend == KvBackend::kDisk) {
    if (options_.disk_dir.empty()) {
      init_status_ =
          Status::InvalidArgument("KvBackend::kDisk requires disk_dir");
    } else {
      init_status_ = EnsureDirExists(options_.disk_dir);
    }
  }

  for (int i = 0; i < n; ++i) {
    if (options_.backend == KvBackend::kDisk && init_status_.ok()) {
      Result<std::unique_ptr<DiskKvNode>> node = DiskKvNode::Open(
          options_.disk_dir + "/node-" + std::to_string(i) + ".log",
          options_.disk);
      if (node.ok()) {
        nodes_.push_back(std::move(*node));
        is_disk_.push_back(true);
        continue;
      }
      init_status_ = node.status();
    }
    // In-memory node — the default backend, and the safe fallback keeping
    // the cluster non-null when a disk node failed to open.
    KvNodeOptions node_options = options_.node;
    // Give each node an independent failure stream.
    node_options.failure_seed = options_.node.failure_seed + i * 0x9e3779b9ULL;
    nodes_.push_back(std::make_unique<InMemoryKvNode>(node_options, metrics, i));
    is_disk_.push_back(false);
  }
}

int KvCluster::NodeIndexFor(const Key& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % nodes_.size());
}

KvStore& KvCluster::NodeFor(const Key& key) {
  return *nodes_[NodeIndexFor(key)];
}

Status KvCluster::Put(const Key& key, const Value& value) {
  return NodeFor(key).Put(key, value);
}

Result<Value> KvCluster::Get(const Key& key) { return NodeFor(key).Get(key); }

Status KvCluster::Delete(const Key& key) { return NodeFor(key).Delete(key); }

bool KvCluster::Contains(const Key& key) { return NodeFor(key).Contains(key); }

size_t KvCluster::Size() {
  size_t total = 0;
  for (auto& node : nodes_) total += node->Size();
  return total;
}

StoreDump KvCluster::Dump() {
  StoreDump dump;
  for (auto& node : nodes_) {
    StoreDump part = node->Dump();
    dump.insert(dump.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  std::sort(dump.begin(), dump.end());
  return dump;
}

Status KvCluster::Clear() {
  for (auto& node : nodes_) {
    TXREP_RETURN_IF_ERROR(node->Clear());
  }
  return Status::OK();
}

InMemoryKvNode* KvCluster::memory_node(int index) {
  if (is_disk_[index]) return nullptr;
  return static_cast<InMemoryKvNode*>(nodes_[index].get());
}

DiskKvNode* KvCluster::disk_node(int index) {
  if (!is_disk_[index]) return nullptr;
  return static_cast<DiskKvNode*>(nodes_[index].get());
}

Status KvCluster::SyncAll() {
  for (int i = 0; i < num_nodes(); ++i) {
    if (DiskKvNode* node = disk_node(i)) {
      TXREP_RETURN_IF_ERROR(node->Sync());
    }
  }
  return Status::OK();
}

Status KvCluster::CompactAll() {
  for (int i = 0; i < num_nodes(); ++i) {
    if (DiskKvNode* node = disk_node(i)) {
      TXREP_RETURN_IF_ERROR(node->Compact());
    }
  }
  return Status::OK();
}

KvStoreStats KvCluster::TotalStats() const {
  KvStoreStats total;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_disk_[i]) continue;
    total += static_cast<const InMemoryKvNode*>(nodes_[i].get())->stats();
  }
  return total;
}

}  // namespace txrep::kv
