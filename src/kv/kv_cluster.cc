#include "kv/kv_cluster.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <utility>

#include "check/mutex.h"
#include "common/clock.h"
#include "obs/names.h"

namespace txrep::kv {

namespace {

/// mkdir -p for the disk backend's log directory.
Status EnsureDirExists(const std::string& path) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Unavailable("mkdir failed for \"" + prefix +
                                 "\": " + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace

KvCluster::KvCluster(KvClusterOptions options, obs::MetricsRegistry* metrics)
    : options_(std::move(options)) {
  const int n = std::max(1, options_.num_nodes);
  nodes_.reserve(n);
  is_disk_.reserve(n);

  if (options_.backend == KvBackend::kDisk) {
    if (options_.disk_dir.empty()) {
      init_status_ =
          Status::InvalidArgument("KvBackend::kDisk requires disk_dir");
    } else {
      init_status_ = EnsureDirExists(options_.disk_dir);
    }
  }

  for (int i = 0; i < n; ++i) {
    if (options_.backend == KvBackend::kDisk && init_status_.ok()) {
      Result<std::unique_ptr<DiskKvNode>> node = DiskKvNode::Open(
          options_.disk_dir + "/node-" + std::to_string(i) + ".log",
          options_.disk, metrics, i);
      if (node.ok()) {
        nodes_.push_back(std::move(*node));
        is_disk_.push_back(true);
        continue;
      }
      init_status_ = node.status();
    }
    // In-memory node — the default backend, and the safe fallback keeping
    // the cluster non-null when a disk node failed to open.
    KvNodeOptions node_options = options_.node;
    // Give each node an independent failure stream.
    node_options.failure_seed = options_.node.failure_seed + i * 0x9e3779b9ULL;
    nodes_.push_back(std::make_unique<InMemoryKvNode>(node_options, metrics, i));
    is_disk_.push_back(false);
  }

  h_dispatch_.assign(nodes_.size(), nullptr);
  if (metrics != nullptr) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      h_dispatch_[i] = metrics->GetHistogram(
          obs::kKvDispatchLatency, {{"node", std::to_string(i)}});
    }
  }
  if (options_.dispatch_threads > 0 && nodes_.size() > 1) {
    dispatch_pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.dispatch_threads), "kv-dispatch");
  }
}

int KvCluster::NodeIndexFor(const Key& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % nodes_.size());
}

KvStore& KvCluster::NodeFor(const Key& key) {
  return *nodes_[NodeIndexFor(key)];
}

Status KvCluster::Put(const Key& key, const Value& value) {
  return NodeFor(key).Put(key, value);
}

Result<Value> KvCluster::Get(const Key& key) { return NodeFor(key).Get(key); }

Status KvCluster::Delete(const Key& key) { return NodeFor(key).Delete(key); }

void KvCluster::FanOut(const std::vector<int>& node_indices,
                       const std::function<void(int)>& fn) {
  if (dispatch_pool_ == nullptr || node_indices.size() <= 1) {
    for (int index : node_indices) fn(index);
    return;
  }
  // Per-call completion latch: the pool is shared by concurrent Multi*
  // callers, so ThreadPool::Wait() (global) would over-wait.
  check::Mutex mu("kv.dispatch_latch");
  check::CondVar cv(&mu);
  size_t pending = node_indices.size();
  for (int index : node_indices) {
    dispatch_pool_->Submit([&, index] {
      fn(index);
      check::MutexLock lock(&mu);
      if (--pending == 0) cv.NotifyOne();
    });
  }
  check::MutexLock lock(&mu);
  while (pending > 0) cv.Wait();
}

Status KvCluster::MultiWrite(std::span<const KvWrite> batch, size_t* applied) {
  if (applied != nullptr) *applied = 0;
  if (batch.empty()) return Status::OK();

  // Stable routing: each node's sub-batch holds its entries in batch order,
  // so per-key order (keys never split across nodes) is preserved.
  std::vector<KvWriteBatch> sub_batches(nodes_.size());
  for (const KvWrite& w : batch) {
    sub_batches[static_cast<size_t>(NodeIndexFor(w.key))].push_back(w);
  }
  std::vector<int> busy_nodes;
  for (size_t i = 0; i < sub_batches.size(); ++i) {
    if (!sub_batches[i].empty()) busy_nodes.push_back(static_cast<int>(i));
  }

  std::vector<Status> statuses(nodes_.size());
  std::vector<size_t> applied_per_node(nodes_.size(), 0);
  FanOut(busy_nodes, [&](int index) {
    const size_t i = static_cast<size_t>(index);
    const int64_t start = NowMicros();
    statuses[i] = nodes_[i]->MultiWrite(sub_batches[i], &applied_per_node[i]);
    if (h_dispatch_[i] != nullptr) {
      h_dispatch_[i]->Record(NowMicros() - start);
    }
  });

  Status first_error = Status::OK();
  for (int index : busy_nodes) {
    const size_t i = static_cast<size_t>(index);
    if (applied != nullptr) *applied += applied_per_node[i];
    if (first_error.ok() && !statuses[i].ok()) first_error = statuses[i];
  }
  return first_error;
}

std::vector<Result<Value>> KvCluster::MultiGet(std::span<const Key> keys) {
  std::vector<Result<Value>> results(
      keys.size(), Result<Value>(Status::Unavailable("not dispatched")));
  if (keys.empty()) return results;

  // Route positionally so results can be scattered back to batch order.
  std::vector<std::vector<Key>> sub_keys(nodes_.size());
  std::vector<std::vector<size_t>> sub_positions(nodes_.size());
  for (size_t pos = 0; pos < keys.size(); ++pos) {
    const size_t i = static_cast<size_t>(NodeIndexFor(keys[pos]));
    sub_keys[i].push_back(keys[pos]);
    sub_positions[i].push_back(pos);
  }
  std::vector<int> busy_nodes;
  for (size_t i = 0; i < sub_keys.size(); ++i) {
    if (!sub_keys[i].empty()) busy_nodes.push_back(static_cast<int>(i));
  }

  FanOut(busy_nodes, [&](int index) {
    const size_t i = static_cast<size_t>(index);
    const int64_t start = NowMicros();
    std::vector<Result<Value>> sub_results = nodes_[i]->MultiGet(sub_keys[i]);
    if (h_dispatch_[i] != nullptr) {
      h_dispatch_[i]->Record(NowMicros() - start);
    }
    for (size_t j = 0; j < sub_results.size(); ++j) {
      results[sub_positions[i][j]] = std::move(sub_results[j]);
    }
  });
  return results;
}

bool KvCluster::Contains(const Key& key) { return NodeFor(key).Contains(key); }

size_t KvCluster::Size() {
  size_t total = 0;
  for (auto& node : nodes_) total += node->Size();
  return total;
}

StoreDump KvCluster::Dump() {
  StoreDump dump;
  for (auto& node : nodes_) {
    StoreDump part = node->Dump();
    dump.insert(dump.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  std::sort(dump.begin(), dump.end());
  return dump;
}

Status KvCluster::Clear() {
  for (auto& node : nodes_) {
    TXREP_RETURN_IF_ERROR(node->Clear());
  }
  return Status::OK();
}

InMemoryKvNode* KvCluster::memory_node(int index) {
  if (is_disk_[index]) return nullptr;
  return static_cast<InMemoryKvNode*>(nodes_[index].get());
}

DiskKvNode* KvCluster::disk_node(int index) {
  if (!is_disk_[index]) return nullptr;
  return static_cast<DiskKvNode*>(nodes_[index].get());
}

Status KvCluster::SyncAll() {
  for (int i = 0; i < num_nodes(); ++i) {
    if (DiskKvNode* node = disk_node(i)) {
      TXREP_RETURN_IF_ERROR(node->Sync());
    }
  }
  return Status::OK();
}

Status KvCluster::CompactAll() {
  for (int i = 0; i < num_nodes(); ++i) {
    if (DiskKvNode* node = disk_node(i)) {
      TXREP_RETURN_IF_ERROR(node->Compact());
    }
  }
  return Status::OK();
}

KvStoreStats KvCluster::TotalStats() const {
  KvStoreStats total;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_disk_[i]) {
      total += static_cast<const DiskKvNode*>(nodes_[i].get())->stats();
    } else {
      total += static_cast<const InMemoryKvNode*>(nodes_[i].get())->stats();
    }
  }
  return total;
}

void KvCluster::SetFailureRate(double rate) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_disk_[i]) continue;
    static_cast<InMemoryKvNode*>(nodes_[i].get())->set_failure_rate(rate);
  }
}

}  // namespace txrep::kv
