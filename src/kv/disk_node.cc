#include "kv/disk_node.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "codec/encoding.h"
#include "common/clock.h"
#include "obs/names.h"

namespace txrep::kv {

namespace {

// Record layout: varint body_len, body, fixed64 FNV-1a(body).
// Body: 1 type byte (0 = put, 1 = delete), length-prefixed key,
// length-prefixed value (puts only).
constexpr char kTypePut = 0;
constexpr char kTypeDelete = 1;

/// fsyncs the directory containing `path` so a rename inside it is durable.
Status SyncParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unavailable("cannot open dir \"" + dir +
                               "\": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("fsync failed for dir \"" + dir +
                               "\": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

DiskKvNode::DiskKvNode(std::string path, DiskKvNodeOptions options,
                       obs::MetricsRegistry* metrics, int node_index)
    : path_(std::move(path)), options_(options) {
  if (metrics == nullptr) return;
  obs::Labels node_label;
  if (node_index >= 0) node_label = {{"node", std::to_string(node_index)}};
  auto op_labels = [&](const char* op) {
    obs::Labels labels = node_label;
    labels.emplace_back("op", op);
    return labels;
  };
  c_gets_ = metrics->GetCounter(obs::kKvOps, op_labels("get"));
  c_puts_ = metrics->GetCounter(obs::kKvOps, op_labels("put"));
  c_deletes_ = metrics->GetCounter(obs::kKvOps, op_labels("delete"));
  c_get_misses_ = metrics->GetCounter(obs::kKvOps, op_labels("get_miss"));
  h_op_latency_ = metrics->GetHistogram(obs::kKvOpLatency, node_label);
  h_queue_wait_ = metrics->GetHistogram(obs::kKvQueueWait, node_label);
  h_batch_size_ = metrics->GetHistogram(obs::kKvBatchSize, node_label);
}

DiskKvNode::~DiskKvNode() {
  check::MutexLock lock(&mu_);
  if (log_ != nullptr) std::fclose(log_);
}

Result<std::unique_ptr<DiskKvNode>> DiskKvNode::Open(
    std::string path, DiskKvNodeOptions options,
    obs::MetricsRegistry* metrics, int node_index) {
  std::unique_ptr<DiskKvNode> node(
      new DiskKvNode(std::move(path), options, metrics, node_index));
  // No concurrency yet (the node is unpublished) — the lock is held purely
  // so the thread-safety analysis can prove ReplayLog's guarded accesses.
  check::MutexLock lock(&node->mu_);
  TXREP_RETURN_IF_ERROR(node->ReplayLog());
  // Reopen for appending.
  node->log_ = std::fopen(node->path_.c_str(), "ab");
  if (node->log_ == nullptr) {
    return Status::Unavailable("cannot open log \"" + node->path_ +
                               "\": " + std::strerror(errno));
  }
  return node;
}

Status DiskKvNode::ReplayLog() {
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) return Status::OK();  // Fresh node.

  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(in);

  std::string_view rest = contents;
  size_t committed_bytes = 0;
  while (!rest.empty()) {
    std::string_view cursor = rest;
    std::string_view body;
    uint64_t checksum = 0;
    if (!codec::GetLengthPrefixed(&cursor, &body) ||
        !codec::GetFixed64(&cursor, &checksum) ||
        codec::Fnv1a(body) != checksum) {
      // Torn tail (crash mid-append): keep what replayed, truncate the rest.
      break;
    }
    // Decode the body.
    if (body.empty()) break;
    const char type = body[0];
    body.remove_prefix(1);
    std::string_view key;
    if (!codec::GetLengthPrefixed(&body, &key)) break;
    if (type == kTypePut) {
      std::string_view value;
      if (!codec::GetLengthPrefixed(&body, &value)) break;
      map_[std::string(key)] = std::string(value);
    } else if (type == kTypeDelete) {
      map_.erase(std::string(key));
    } else {
      break;  // Unknown record type: treat as corruption tail.
    }
    ++replayed_records_;
    committed_bytes = contents.size() - cursor.size();
    rest = cursor;
  }

  recovered_truncated_bytes_ = contents.size() - committed_bytes;
  if (recovered_truncated_bytes_ > 0) {
    if (::truncate(path_.c_str(),
                   static_cast<off_t>(committed_bytes)) != 0) {
      return Status::Unavailable("cannot truncate torn tail of \"" + path_ +
                                 "\": " + std::strerror(errno));
    }
  }
  return Status::OK();
}

Status DiskKvNode::AppendRecord(bool tombstone, const Key& key,
                                const Value& value) {
  std::string body;
  body.push_back(tombstone ? kTypeDelete : kTypePut);
  codec::AppendLengthPrefixed(body, key);
  if (!tombstone) codec::AppendLengthPrefixed(body, value);

  std::string record;
  codec::AppendLengthPrefixed(record, body);
  codec::AppendFixed64(record, codec::Fnv1a(body));

  if (log_ == nullptr) {
    return Status::Unavailable("log \"" + path_ + "\" is not open");
  }
  if (std::fwrite(record.data(), 1, record.size(), log_) != record.size()) {
    return Status::Unavailable("log append failed: " +
                               std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void DiskKvNode::MaybeSyncLocked() {
  if (!options_.sync_every_write || log_ == nullptr) return;
  std::fflush(log_);
  ::fsync(::fileno(log_));
}

Status DiskKvNode::Put(const Key& key, const Value& value) {
  const int64_t start = NowMicros();
  check::MutexLock lock(&mu_);
  if (h_queue_wait_ != nullptr) h_queue_wait_->Record(NowMicros() - start);
  TXREP_RETURN_IF_ERROR(AppendRecord(/*tombstone=*/false, key, value));
  MaybeSyncLocked();
  map_[key] = value;
  ++stats_.puts;
  if (c_puts_ != nullptr) c_puts_->Increment();
  if (h_op_latency_ != nullptr) h_op_latency_->Record(NowMicros() - start);
  return Status::OK();
}

Result<Value> DiskKvNode::Get(const Key& key) {
  const int64_t start = NowMicros();
  check::MutexLock lock(&mu_);
  if (h_queue_wait_ != nullptr) h_queue_wait_->Record(NowMicros() - start);
  ++stats_.gets;
  if (c_gets_ != nullptr) c_gets_->Increment();
  if (h_op_latency_ != nullptr) h_op_latency_->Record(NowMicros() - start);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.get_misses;
    if (c_get_misses_ != nullptr) c_get_misses_->Increment();
    return Status::NotFound("key \"" + key + "\" not present");
  }
  return it->second;
}

Status DiskKvNode::Delete(const Key& key) {
  const int64_t start = NowMicros();
  check::MutexLock lock(&mu_);
  if (h_queue_wait_ != nullptr) h_queue_wait_->Record(NowMicros() - start);
  if (map_.erase(key) > 0) {
    TXREP_RETURN_IF_ERROR(AppendRecord(/*tombstone=*/true, key, {}));
    MaybeSyncLocked();
  }
  ++stats_.deletes;
  if (c_deletes_ != nullptr) c_deletes_->Increment();
  if (h_op_latency_ != nullptr) h_op_latency_->Record(NowMicros() - start);
  return Status::OK();
}

Status DiskKvNode::MultiWrite(std::span<const KvWrite> batch,
                              size_t* applied) {
  if (applied != nullptr) *applied = 0;
  if (batch.empty()) return Status::OK();
  const int64_t start = NowMicros();
  check::MutexLock lock(&mu_);
  if (h_queue_wait_ != nullptr) h_queue_wait_->Record(NowMicros() - start);
  Status status = Status::OK();
  for (const KvWrite& w : batch) {
    if (w.tombstone) {
      if (map_.erase(w.key) > 0) {
        status = AppendRecord(/*tombstone=*/true, w.key, {});
        if (!status.ok()) break;
      }
      ++stats_.deletes;
      if (c_deletes_ != nullptr) c_deletes_->Increment();
    } else {
      status = AppendRecord(/*tombstone=*/false, w.key, w.value);
      if (!status.ok()) break;
      map_[w.key] = w.value;
      ++stats_.puts;
      if (c_puts_ != nullptr) c_puts_->Increment();
    }
    if (applied != nullptr) ++*applied;
  }
  // One flush+fsync covers the whole batch — the durability point moves to
  // batch end, which is still before MultiWrite returns.
  MaybeSyncLocked();
  ++stats_.batches;
  if (h_batch_size_ != nullptr) {
    h_batch_size_->Record(static_cast<int64_t>(batch.size()));
  }
  if (h_op_latency_ != nullptr) h_op_latency_->Record(NowMicros() - start);
  return status;
}

std::vector<Result<Value>> DiskKvNode::MultiGet(std::span<const Key> keys) {
  const int64_t start = NowMicros();
  std::vector<Result<Value>> results;
  results.reserve(keys.size());
  if (keys.empty()) return results;
  check::MutexLock lock(&mu_);
  if (h_queue_wait_ != nullptr) h_queue_wait_->Record(NowMicros() - start);
  for (const Key& key : keys) {
    ++stats_.gets;
    if (c_gets_ != nullptr) c_gets_->Increment();
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.get_misses;
      if (c_get_misses_ != nullptr) c_get_misses_->Increment();
      results.push_back(Status::NotFound("key \"" + key + "\" not present"));
    } else {
      results.push_back(it->second);
    }
  }
  ++stats_.batches;
  if (h_batch_size_ != nullptr) {
    h_batch_size_->Record(static_cast<int64_t>(keys.size()));
  }
  if (h_op_latency_ != nullptr) h_op_latency_->Record(NowMicros() - start);
  return results;
}

bool DiskKvNode::Contains(const Key& key) {
  check::MutexLock lock(&mu_);
  return map_.contains(key);
}

size_t DiskKvNode::Size() {
  check::MutexLock lock(&mu_);
  return map_.size();
}

StoreDump DiskKvNode::Dump() {
  check::MutexLock lock(&mu_);
  StoreDump dump;
  dump.reserve(map_.size());
  for (const auto& [k, v] : map_) dump.emplace_back(k, v);
  std::sort(dump.begin(), dump.end());
  return dump;
}

KvStoreStats DiskKvNode::stats() const {
  check::MutexLock lock(&mu_);
  return stats_;
}

Status DiskKvNode::Sync() {
  check::MutexLock lock(&mu_);
  if (std::fflush(log_) != 0 || ::fsync(::fileno(log_)) != 0) {
    return Status::Unavailable("fsync failed: " +
                               std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status DiskKvNode::Compact() {
  check::MutexLock lock(&mu_);
  const std::string tmp_path = path_ + ".compact";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Unavailable("cannot create \"" + tmp_path +
                               "\": " + std::strerror(errno));
  }
  // The rewritten log is replica-visible state: a byte-for-byte comparison
  // of two replicas' logs after compaction must succeed, so the records are
  // emitted in sorted key order rather than hash order.
  std::vector<const std::pair<const std::string, std::string>*> entries;
  entries.reserve(map_.size());
  for (const auto& entry : map_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : entries) {
    std::string body;
    body.push_back(kTypePut);
    codec::AppendLengthPrefixed(body, entry->first);
    codec::AppendLengthPrefixed(body, entry->second);
    std::string record;
    codec::AppendLengthPrefixed(record, body);
    codec::AppendFixed64(record, codec::Fnv1a(body));
    if (std::fwrite(record.data(), 1, record.size(), out) != record.size()) {
      std::fclose(out);
      std::remove(tmp_path.c_str());
      return Status::Unavailable("compaction write failed");
    }
  }
  // The rewritten log must be durable *before* it replaces the old one;
  // renaming an unsynced file can surface after a crash as an empty or
  // partial log where a complete one used to be.
  if (std::fflush(out) != 0 || ::fsync(::fileno(out)) != 0) {
    std::fclose(out);
    std::remove(tmp_path.c_str());
    return Status::Unavailable("compaction fsync failed: " +
                               std::string(std::strerror(errno)));
  }
  if (std::fclose(out) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("compaction close failed: " +
                               std::string(std::strerror(errno)));
  }

  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    const Status status =
        Status::Unavailable("compaction rename failed: " +
                            std::string(std::strerror(errno)));
    std::remove(tmp_path.c_str());
    // The old log is still in place; reopen it so the node stays usable.
    log_ = std::fopen(path_.c_str(), "ab");
    return status;
  }
  TXREP_RETURN_IF_ERROR(SyncParentDir(path_));
  log_ = std::fopen(path_.c_str(), "ab");
  if (log_ == nullptr) {
    return Status::Unavailable("cannot reopen compacted log");
  }
  return Status::OK();
}

Status DiskKvNode::Clear() {
  check::MutexLock lock(&mu_);
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
  // Truncate by reopening in write mode, then switch back to append mode.
  std::FILE* truncated = std::fopen(path_.c_str(), "wb");
  if (truncated == nullptr) {
    return Status::Unavailable("cannot truncate log \"" + path_ +
                               "\": " + std::strerror(errno));
  }
  if (std::fclose(truncated) != 0) {
    return Status::Unavailable("cannot truncate log \"" + path_ +
                               "\": " + std::strerror(errno));
  }
  log_ = std::fopen(path_.c_str(), "ab");
  if (log_ == nullptr) {
    return Status::Unavailable("cannot reopen log \"" + path_ +
                               "\": " + std::strerror(errno));
  }
  map_.clear();
  return Status::OK();
}

}  // namespace txrep::kv
