#include "kv/kv_types.h"

#include <cstdio>

namespace txrep::kv {

const char* KvOpTypeName(KvOpType type) {
  switch (type) {
    case KvOpType::kGet:
      return "GET";
    case KvOpType::kPut:
      return "PUT";
    case KvOpType::kDelete:
      return "DELETE";
  }
  return "?";
}

std::string KvOp::DebugString() const {
  char buf[96];
  if (type == KvOpType::kPut) {
    std::snprintf(buf, sizeof(buf), "(%zu bytes)", value.size());
    return std::string(KvOpTypeName(type)) + "(\"" + key + "\", " + buf + ")";
  }
  return std::string(KvOpTypeName(type)) + "(\"" + key + "\")";
}

bool operator==(const KvOp& a, const KvOp& b) {
  return a.type == b.type && a.key == b.key && a.value == b.value;
}

std::string KvWrite::DebugString() const {
  if (tombstone) return "DELETE(\"" + key + "\")";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "(%zu bytes)", value.size());
  return "PUT(\"" + key + "\", " + buf + ")";
}

bool operator==(const KvWrite& a, const KvWrite& b) {
  return a.tombstone == b.tombstone && a.key == b.key && a.value == b.value;
}

}  // namespace txrep::kv
