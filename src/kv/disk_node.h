#ifndef TXREP_KV_DISK_NODE_H_
#define TXREP_KV_DISK_NODE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "check/mutex.h"
#include "common/histogram.h"
#include "common/result.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"

namespace txrep::kv {

/// Tuning knobs for the disk-backed node.
struct DiskKvNodeOptions {
  /// fsync() after every mutation. Off by default (like memcachedb's default
  /// non-sync mode); Sync() forces it on demand.
  bool sync_every_write = false;
};

/// Disk-backed key-value node — the "memcachedb / membase" flavour of the
/// paper's replica ("disk based key-value store system ... to provide data
/// persistence and recovery", §1).
///
/// Design: an append-only operation log (checksummed records) plus an
/// in-memory hash index holding the live state. Open() replays the log and
/// tolerates a torn tail (a crash mid-append loses at most the unfinished
/// record); Compact() rewrites the log to the live state only.
///
/// Thread-safe; per-key atomic read-write consistency like InMemoryKvNode.
class DiskKvNode : public KvStore {
 public:
  /// Opens (creating if absent) the node at `path`. Replays existing
  /// records; a trailing partial record is truncated away.
  ///
  /// `metrics` (optional, must outlive the node) receives the same per-op
  /// counters and latency histograms as InMemoryKvNode, labeled
  /// {node="`node_index`"} when `node_index` >= 0 — disk nodes are no longer
  /// unobserved at the op level.
  static Result<std::unique_ptr<DiskKvNode>> Open(
      std::string path, DiskKvNodeOptions options = {},
      obs::MetricsRegistry* metrics = nullptr, int node_index = -1);

  ~DiskKvNode() override;

  DiskKvNode(const DiskKvNode&) = delete;
  DiskKvNode& operator=(const DiskKvNode&) = delete;

  Status Put(const Key& key, const Value& value) override;
  Result<Value> Get(const Key& key) override;
  Status Delete(const Key& key) override;

  /// Batch write under one lock acquisition and (in sync_every_write mode)
  /// one flush+fsync for the whole batch instead of one per record — the
  /// disk analogue of the amortized service model. Stops at the first append
  /// error, so the applied entries are a prefix of the batch.
  Status MultiWrite(std::span<const KvWrite> batch,
                    size_t* applied = nullptr) override;

  /// Batch read under one lock acquisition; per-key positional results.
  std::vector<Result<Value>> MultiGet(std::span<const Key> keys) override;

  bool Contains(const Key& key) override;
  size_t Size() override;
  StoreDump Dump() override;

  /// Truncates the log and drops the in-memory index — a fresh, empty node.
  /// Used by checkpoint install before loading a snapshot.
  Status Clear() override;

  /// Flushes and fsyncs the log.
  Status Sync();

  /// Rewrites the log so it contains exactly the live records (dropping
  /// overwritten and deleted history). The rewritten log is fsynced before
  /// it is renamed over the old one and the rename is fsynced in the parent
  /// directory, so a crash at any point leaves either the full old log or
  /// the full new one. On failure the node stays usable on its old log.
  Status Compact();

  /// Records replayed at Open (live + dead), for recovery diagnostics.
  size_t replayed_records() const { return replayed_records_; }

  /// Bytes the torn tail truncated at Open (0 for a clean log).
  size_t recovered_truncated_bytes() const {
    return recovered_truncated_bytes_;
  }

  const std::string& path() const { return path_; }

  /// Cumulative operation counters (snapshot), like InMemoryKvNode::stats().
  KvStoreStats stats() const;

 private:
  DiskKvNode(std::string path, DiskKvNodeOptions options,
             obs::MetricsRegistry* metrics, int node_index);

  Status ReplayLog() TXREP_REQUIRES(mu_);
  /// Appends one record without honoring sync_every_write; callers follow up
  /// with MaybeSyncLocked() — once per op, or once per batch.
  Status AppendRecord(bool tombstone, const Key& key, const Value& value)
      TXREP_REQUIRES(mu_);
  /// flush+fsync iff sync_every_write is set.
  void MaybeSyncLocked() TXREP_REQUIRES(mu_);

  const std::string path_;
  const DiskKvNodeOptions options_;

  mutable check::Mutex mu_{"disk_node.mu"};
  std::FILE* log_ TXREP_GUARDED_BY(mu_) = nullptr;
  std::unordered_map<Key, Value> map_ TXREP_GUARDED_BY(mu_);
  KvStoreStats stats_ TXREP_GUARDED_BY(mu_);

  // Registry instruments (null when the node runs unobserved).
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_gets_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_puts_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_deletes_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_get_misses_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_op_latency_ = nullptr;
  /// Time spent waiting to acquire mu_ (the disk node's queue: ops serialize
  /// on the single log/index lock, so lock wait is queue wait).
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_queue_wait_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_batch_size_ = nullptr;
  // Write-once during Open() (single-threaded), read-only afterwards — no
  // lock needed.
  // analyze: lock-free(written only during single-threaded Open/recovery)
  size_t replayed_records_ = 0;
  // analyze: lock-free(written only during single-threaded Open/recovery)
  size_t recovered_truncated_bytes_ = 0;
};

}  // namespace txrep::kv

#endif  // TXREP_KV_DISK_NODE_H_
