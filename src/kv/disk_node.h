#ifndef TXREP_KV_DISK_NODE_H_
#define TXREP_KV_DISK_NODE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "check/mutex.h"
#include "common/result.h"
#include "kv/kv_store.h"

namespace txrep::kv {

/// Tuning knobs for the disk-backed node.
struct DiskKvNodeOptions {
  /// fsync() after every mutation. Off by default (like memcachedb's default
  /// non-sync mode); Sync() forces it on demand.
  bool sync_every_write = false;
};

/// Disk-backed key-value node — the "memcachedb / membase" flavour of the
/// paper's replica ("disk based key-value store system ... to provide data
/// persistence and recovery", §1).
///
/// Design: an append-only operation log (checksummed records) plus an
/// in-memory hash index holding the live state. Open() replays the log and
/// tolerates a torn tail (a crash mid-append loses at most the unfinished
/// record); Compact() rewrites the log to the live state only.
///
/// Thread-safe; per-key atomic read-write consistency like InMemoryKvNode.
class DiskKvNode : public KvStore {
 public:
  /// Opens (creating if absent) the node at `path`. Replays existing
  /// records; a trailing partial record is truncated away.
  static Result<std::unique_ptr<DiskKvNode>> Open(
      std::string path, DiskKvNodeOptions options = {});

  ~DiskKvNode() override;

  DiskKvNode(const DiskKvNode&) = delete;
  DiskKvNode& operator=(const DiskKvNode&) = delete;

  Status Put(const Key& key, const Value& value) override;
  Result<Value> Get(const Key& key) override;
  Status Delete(const Key& key) override;
  bool Contains(const Key& key) override;
  size_t Size() override;
  StoreDump Dump() override;

  /// Truncates the log and drops the in-memory index — a fresh, empty node.
  /// Used by checkpoint install before loading a snapshot.
  Status Clear() override;

  /// Flushes and fsyncs the log.
  Status Sync();

  /// Rewrites the log so it contains exactly the live records (dropping
  /// overwritten and deleted history). The rewritten log is fsynced before
  /// it is renamed over the old one and the rename is fsynced in the parent
  /// directory, so a crash at any point leaves either the full old log or
  /// the full new one. On failure the node stays usable on its old log.
  Status Compact();

  /// Records replayed at Open (live + dead), for recovery diagnostics.
  size_t replayed_records() const { return replayed_records_; }

  /// Bytes the torn tail truncated at Open (0 for a clean log).
  size_t recovered_truncated_bytes() const {
    return recovered_truncated_bytes_;
  }

  const std::string& path() const { return path_; }

 private:
  DiskKvNode(std::string path, DiskKvNodeOptions options);

  Status ReplayLog() TXREP_REQUIRES(mu_);
  Status AppendRecord(bool tombstone, const Key& key, const Value& value)
      TXREP_REQUIRES(mu_);

  const std::string path_;
  const DiskKvNodeOptions options_;

  check::Mutex mu_{"disk_node.mu"};
  std::FILE* log_ TXREP_GUARDED_BY(mu_) = nullptr;
  std::unordered_map<Key, Value> map_ TXREP_GUARDED_BY(mu_);
  // Write-once during Open() (single-threaded), read-only afterwards — no
  // lock needed.
  size_t replayed_records_ = 0;
  size_t recovered_truncated_bytes_ = 0;
};

}  // namespace txrep::kv

#endif  // TXREP_KV_DISK_NODE_H_
