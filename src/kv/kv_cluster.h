#ifndef TXREP_KV_KV_CLUSTER_H_
#define TXREP_KV_KV_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/inmemory_node.h"
#include "kv/kv_store.h"

namespace txrep::kv {

/// Configuration of a partitioned key-value cluster (the replica side's
/// Voldemort stand-in).
struct KvClusterOptions {
  /// Number of nodes; keys are hash-partitioned across them.
  int num_nodes = 5;

  /// Per-node simulation knobs (see KvNodeOptions).
  KvNodeOptions node;
};

/// Hash-partitioned cluster of InMemoryKvNodes implementing the same KvStore
/// interface. Each key lives on exactly one node; the cluster adds no
/// replication of its own (the paper's store is the replica).
///
/// Per-node service slots mean aggregate capacity grows with the node count,
/// reproducing the paper's Fig. 17 behaviour.
class KvCluster : public KvStore {
 public:
  /// `metrics` (optional, must outlive the cluster) receives per-node op
  /// counters, latency histograms and slot gauges, labeled {node="i"}.
  explicit KvCluster(KvClusterOptions options = {},
                     obs::MetricsRegistry* metrics = nullptr);

  KvCluster(const KvCluster&) = delete;
  KvCluster& operator=(const KvCluster&) = delete;

  Status Put(const Key& key, const Value& value) override;
  Result<Value> Get(const Key& key) override;
  Status Delete(const Key& key) override;
  bool Contains(const Key& key) override;
  size_t Size() override;
  StoreDump Dump() override;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Index of the node owning `key` (stable hash partitioning).
  int NodeIndexFor(const Key& key) const;

  /// Direct access to a node, e.g. for per-node stats in benchmarks.
  InMemoryKvNode& node(int index) { return *nodes_[index]; }

  /// Sum of per-node counters.
  KvStoreStats TotalStats() const;

 private:
  InMemoryKvNode& NodeFor(const Key& key);

  std::vector<std::unique_ptr<InMemoryKvNode>> nodes_;
};

}  // namespace txrep::kv

#endif  // TXREP_KV_KV_CLUSTER_H_
