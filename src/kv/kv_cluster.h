#ifndef TXREP_KV_KV_CLUSTER_H_
#define TXREP_KV_KV_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "kv/disk_node.h"
#include "kv/inmemory_node.h"
#include "kv/kv_store.h"

namespace txrep::kv {

/// Which concrete store backs each cluster node.
enum class KvBackend {
  kInMemory,  // InMemoryKvNode — the paper's memcached/Voldemort-in-RAM mode.
  kDisk,      // DiskKvNode — persistent log-structured nodes (paper §1's
              // "data persistence and recovery" flavour).
};

/// Configuration of a partitioned key-value cluster (the replica side's
/// Voldemort stand-in).
struct KvClusterOptions {
  /// Number of nodes; keys are hash-partitioned across them.
  int num_nodes = 5;

  /// Per-node simulation knobs (see KvNodeOptions). In-memory backend only.
  KvNodeOptions node;

  /// Node backend. The disk backend requires `disk_dir` and reports open
  /// failures through KvCluster::init_status().
  KvBackend backend = KvBackend::kInMemory;

  /// Directory holding the per-node logs ("node-<i>.log"), created if
  /// absent. Reopening the same directory recovers the persisted state.
  std::string disk_dir;

  /// Per-node knobs for the disk backend.
  DiskKvNodeOptions disk;

  /// Threads fanning Multi* sub-batches out to their nodes in parallel; also
  /// the bound on sub-batches in flight per call. 0 dispatches inline
  /// (sequential per-node loop) — deterministic, for the serial reference
  /// replay in equivalence tests.
  int dispatch_threads = 4;
};

/// Hash-partitioned cluster of KV nodes implementing the same KvStore
/// interface. Each key lives on exactly one node; the cluster adds no
/// replication of its own (the paper's store is the replica).
///
/// Per-node service slots (in-memory backend) mean aggregate capacity grows
/// with the node count, reproducing the paper's Fig. 17 behaviour.
class KvCluster : public KvStore {
 public:
  /// `metrics` (optional, must outlive the cluster) receives per-node op
  /// counters, latency histograms and slot gauges, labeled {node="i"}, for
  /// both backends (disk nodes report the same per-op instruments as
  /// in-memory ones), plus per-node Multi* dispatch latency.
  ///
  /// Construction cannot fail, but opening disk-backed nodes can: check
  /// init_status() before using a kDisk cluster. Nodes that failed to open
  /// are replaced with empty in-memory nodes so the object stays safe to
  /// call either way.
  explicit KvCluster(KvClusterOptions options = {},
                     obs::MetricsRegistry* metrics = nullptr);

  KvCluster(const KvCluster&) = delete;
  KvCluster& operator=(const KvCluster&) = delete;

  Status Put(const Key& key, const Value& value) override;
  Result<Value> Get(const Key& key) override;
  Status Delete(const Key& key) override;

  /// Routes each entry to its owning node (stable hash partitioning, so
  /// per-key order within the batch is preserved) and fans the per-node
  /// sub-batches out in parallel on the dispatch pool. Each node applies its
  /// sub-batch per its own partial-failure contract; `applied` is the sum of
  /// per-node applied counts and the returned status is the first failing
  /// node's (by node index).
  Status MultiWrite(std::span<const KvWrite> batch,
                    size_t* applied = nullptr) override;

  /// Same routing/fan-out for reads. Results are positional (results[i] is
  /// keys[i]) regardless of which node served each key.
  std::vector<Result<Value>> MultiGet(std::span<const Key> keys) override;

  bool Contains(const Key& key) override;
  size_t Size() override;
  StoreDump Dump() override;
  Status Clear() override;

  /// OK for the in-memory backend; for kDisk, the first node-open error if
  /// any log failed to open/replay.
  const Status& init_status() const { return init_status_; }

  KvBackend backend() const { return options_.backend; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Index of the node owning `key` (stable hash partitioning).
  int NodeIndexFor(const Key& key) const;

  /// Direct access to a node, e.g. for per-node stats in benchmarks or
  /// per-shard checkpointing.
  KvStore& node(int index) { return *nodes_[index]; }

  /// Backend-typed access; nullptr when the node is of the other backend.
  InMemoryKvNode* memory_node(int index);
  DiskKvNode* disk_node(int index);

  /// Flushes and fsyncs every disk node's log (no-op for in-memory nodes).
  Status SyncAll();

  /// Compacts every disk node's log to live records only (no-op for
  /// in-memory nodes). Called after a checkpoint install drops history.
  Status CompactAll();

  /// Sum of per-node counters across both backends.
  KvStoreStats TotalStats() const;

  /// Adjusts the injected-failure probability on every in-memory node (disk
  /// nodes have no failure injection). Test fencing helper, like
  /// InMemoryKvNode::set_failure_rate.
  void SetFailureRate(double rate);

 private:
  KvStore& NodeFor(const Key& key);

  /// Runs `fn(node_index)` for every index in `node_indices`, in parallel on
  /// the dispatch pool when it exists (blocking until all complete), inline
  /// otherwise.
  void FanOut(const std::vector<int>& node_indices,
              const std::function<void(int)>& fn);

  KvClusterOptions options_;
  Status init_status_;
  std::vector<std::unique_ptr<KvStore>> nodes_;
  /// Parallel to nodes_: true when nodes_[i] is a DiskKvNode (a disk node
  /// that failed to open falls back to in-memory, so this is per-node).
  std::vector<bool> is_disk_;
  /// Parallel to nodes_: per-node Multi* sub-batch dispatch latency (null
  /// when the cluster runs unobserved).
  std::vector<Histogram*> h_dispatch_;
  /// Fan-out workers; null when dispatch_threads == 0 (inline dispatch).
  std::unique_ptr<ThreadPool> dispatch_pool_;
};

}  // namespace txrep::kv

#endif  // TXREP_KV_KV_CLUSTER_H_
