#ifndef TXREP_KV_INMEMORY_NODE_H_
#define TXREP_KV_INMEMORY_NODE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "check/mutex.h"
#include "common/histogram.h"
#include "common/random.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"

namespace txrep::kv {

/// Tuning and simulation knobs for a single key-value node.
struct KvNodeOptions {
  /// Simulated per-operation service time in microseconds. Models the network
  /// round-trip + server work that dominates KV op cost in the paper's
  /// Voldemort deployment. 0 disables simulation (pure in-memory speed).
  int64_t service_time_micros = 0;

  /// How many operations the node can service concurrently (its "server
  /// threads"). Ops beyond this queue at the node. 0 means unlimited.
  /// Small values make per-node capacity the bottleneck, which is what gives
  /// the paper's Fig. 17 cluster-size effect.
  int service_slots = 0;

  /// Incremental service time, microseconds, for each op after the first in
  /// a Multi* batch: a k-op batch occupies one service slot for
  /// `service_time_micros + (k-1) * batch_marginal_micros` instead of k full
  /// round trips. -1 derives the marginal cost as service_time_micros / 8
  /// (the round trip dominates; the per-op server work is small).
  int64_t batch_marginal_micros = -1;

  /// Probability in [0,1] that an operation fails with Unavailable before
  /// touching state. For failure-injection tests only.
  double failure_rate = 0.0;

  /// Seed for the failure-injection RNG.
  uint64_t failure_seed = 42;
};

/// Single in-memory key-value node.
///
/// - Striped hash maps with shared_mutex stripes give per-key atomic
///   read-write consistency (the paper's §5 assumption).
/// - An optional service-slot gate + sleep simulates node capacity and
///   round-trip latency so that the concurrency experiments behave like the
///   paper's networked cluster even on one host.
class InMemoryKvNode : public KvStore {
 public:
  /// `metrics` (optional, must outlive the node) receives per-op counters,
  /// op-latency histograms and the slot-occupancy gauge, labeled
  /// {node="`node_index`"} when `node_index` >= 0.
  explicit InMemoryKvNode(KvNodeOptions options = {},
                          obs::MetricsRegistry* metrics = nullptr,
                          int node_index = -1);

  InMemoryKvNode(const InMemoryKvNode&) = delete;
  InMemoryKvNode& operator=(const InMemoryKvNode&) = delete;

  Status Put(const Key& key, const Value& value) override;
  Result<Value> Get(const Key& key) override;
  Status Delete(const Key& key) override;

  /// Batch write: one slot occupancy of `service_time_micros +
  /// (k-1) * batch_marginal_micros`. Attempts every entry — an injected
  /// transient failure skips just that entry (its key keeps its prior value)
  /// and the first error is returned; `applied` counts entries that took
  /// effect. The failure dice are rolled once per entry in batch order, so a
  /// batched replay consumes the same RNG stream as op-at-a-time replay.
  Status MultiWrite(std::span<const KvWrite> batch,
                    size_t* applied = nullptr) override;

  /// Batch read under the same amortized service model. Per-key positional
  /// results; an injected failure or miss fails only that entry.
  std::vector<Result<Value>> MultiGet(std::span<const Key> keys) override;

  bool Contains(const Key& key) override;
  size_t Size() override;
  StoreDump Dump() override;
  Status Clear() override;

  /// Cumulative operation counters (snapshot).
  KvStoreStats stats() const;

  /// Latency distribution of completed operations (includes queueing at the
  /// service gate and the simulated service time).
  const Histogram& op_latency() const { return op_latency_; }

  /// Distribution of time spent queueing at the service gate alone (the
  /// queue-wait share of op_latency; zero entries when slots never filled).
  const Histogram& queue_wait() const { return queue_wait_; }

  const KvNodeOptions& options() const { return options_; }

  /// Adjusts the injected-failure probability at runtime so tests can fence
  /// the failure window: populate cleanly, inject during the phase under
  /// test, audit cleanly. Initialized from options().failure_rate.
  void set_failure_rate(double rate) {
    failure_rate_.store(rate, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kNumStripes = 16;

  struct Stripe {
    /// Unnamed (out of the lock-order graph): stripes are leaf locks, never
    /// held while acquiring another lock, and two stripes are never nested.
    mutable check::SharedMutex mu;
    std::unordered_map<Key, Value> map TXREP_GUARDED_BY(mu);
  };

  /// Occupies a service slot for the simulated service time; returns an
  /// injected failure if the failure dice say so.
  Status SimulateService();

  /// One Bernoulli roll of the failure dice (batch entries roll per entry, in
  /// batch order, so batched and op-at-a-time replay share the RNG stream).
  bool RollFailure();

  /// Occupies one service slot for `micros` of simulated time. Returns how
  /// long the op queued at the gate waiting for a free slot (0 when slots
  /// are unlimited or one was free immediately).
  int64_t OccupySlot(int64_t micros);

  /// Effective per-extra-op marginal service cost (resolves the -1 default).
  int64_t MarginalMicros() const;

  Stripe& StripeFor(const Key& key);

  const KvNodeOptions options_;
  // analyze: lock-free(per-stripe locking; each Stripe owns its own mutex)
  std::array<Stripe, kNumStripes> stripes_;

  // Service gate (counting semaphore with runtime capacity).
  check::Mutex gate_mu_{"kv.gate"};
  check::CondVar gate_cv_{&gate_mu_};
  int in_service_ TXREP_GUARDED_BY(gate_mu_) = 0;

  // Failure injection. The rate is an atomic (not guarded) so the zero-rate
  // fast path skips the lock entirely.
  std::atomic<double> failure_rate_;
  check::Mutex failure_mu_{"kv.failure"};
  Random failure_rng_ TXREP_GUARDED_BY(failure_mu_);

  // Counters.
  mutable check::Mutex stats_mu_{"kv.stats"};
  KvStoreStats stats_ TXREP_GUARDED_BY(stats_mu_);
  // analyze: lock-free(Histogram is internally synchronized)
  Histogram op_latency_;
  // analyze: lock-free(Histogram is internally synchronized)
  Histogram queue_wait_;

  // Registry instruments (null when the node runs unobserved).
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_gets_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_puts_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_deletes_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_get_misses_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_op_latency_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_queue_wait_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_batch_size_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_slots_ = nullptr;
};

}  // namespace txrep::kv

#endif  // TXREP_KV_INMEMORY_NODE_H_
