#ifndef TXREP_KV_KV_TYPES_H_
#define TXREP_KV_KV_TYPES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace txrep::kv {

/// Keys and values are opaque byte strings, as in memcached/Voldemort.
using Key = std::string;
using Value = std::string;

/// The three native operations of the key-value store API (paper §3).
enum class KvOpType : uint8_t { kGet = 0, kPut = 1, kDelete = 2 };

/// Returns "GET", "PUT" or "DELETE".
const char* KvOpTypeName(KvOpType type);

/// One translated key-value operation. The Query Translator turns each logged
/// SQL write statement into an ordered program of KvOps; the Transaction
/// Manager executes those programs through per-transaction buffers.
struct KvOp {
  KvOpType type = KvOpType::kGet;
  Key key;
  Value value;  // Only meaningful for kPut.

  static KvOp Get(Key key) { return KvOp{KvOpType::kGet, std::move(key), {}}; }
  static KvOp Put(Key key, Value value) {
    return KvOp{KvOpType::kPut, std::move(key), std::move(value)};
  }
  static KvOp Delete(Key key) {
    return KvOp{KvOpType::kDelete, std::move(key), {}};
  }

  /// e.g. `PUT("ITEM_1", 24 bytes)`.
  std::string DebugString() const;
};

bool operator==(const KvOp& a, const KvOp& b);

/// One entry of a write batch (the batched-apply pipeline's unit): a PUT, or
/// a DELETE when `tombstone` is set. Batches are ordered; stores must apply
/// (or skip, see MultiWrite) entries in batch order, so two writes to the
/// same key within one batch resolve exactly as they would op-at-a-time.
struct KvWrite {
  Key key;
  Value value;  // Empty for tombstones.
  bool tombstone = false;

  static KvWrite Put(Key key, Value value) {
    return KvWrite{std::move(key), std::move(value), false};
  }
  static KvWrite Delete(Key key) { return KvWrite{std::move(key), {}, true}; }

  /// e.g. `PUT("ITEM_1", 24 bytes)` / `DELETE("ITEM_1")`.
  std::string DebugString() const;
};

bool operator==(const KvWrite& a, const KvWrite& b);

/// An ordered write batch — what one committed transaction's coalesced write
/// set becomes on the apply path.
using KvWriteBatch = std::vector<KvWrite>;

/// A full, sorted snapshot of a store — the unit of state comparison in the
/// equivalence tests (concurrent replay must dump byte-identically to serial
/// replay).
using StoreDump = std::vector<std::pair<Key, Value>>;

}  // namespace txrep::kv

#endif  // TXREP_KV_KV_TYPES_H_
