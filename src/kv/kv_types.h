#ifndef TXREP_KV_KV_TYPES_H_
#define TXREP_KV_KV_TYPES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace txrep::kv {

/// Keys and values are opaque byte strings, as in memcached/Voldemort.
using Key = std::string;
using Value = std::string;

/// The three native operations of the key-value store API (paper §3).
enum class KvOpType : uint8_t { kGet = 0, kPut = 1, kDelete = 2 };

/// Returns "GET", "PUT" or "DELETE".
const char* KvOpTypeName(KvOpType type);

/// One translated key-value operation. The Query Translator turns each logged
/// SQL write statement into an ordered program of KvOps; the Transaction
/// Manager executes those programs through per-transaction buffers.
struct KvOp {
  KvOpType type = KvOpType::kGet;
  Key key;
  Value value;  // Only meaningful for kPut.

  static KvOp Get(Key key) { return KvOp{KvOpType::kGet, std::move(key), {}}; }
  static KvOp Put(Key key, Value value) {
    return KvOp{KvOpType::kPut, std::move(key), std::move(value)};
  }
  static KvOp Delete(Key key) {
    return KvOp{KvOpType::kDelete, std::move(key), {}};
  }

  /// e.g. `PUT("ITEM_1", 24 bytes)`.
  std::string DebugString() const;
};

bool operator==(const KvOp& a, const KvOp& b);

/// A full, sorted snapshot of a store — the unit of state comparison in the
/// equivalence tests (concurrent replay must dump byte-identically to serial
/// replay).
using StoreDump = std::vector<std::pair<Key, Value>>;

}  // namespace txrep::kv

#endif  // TXREP_KV_KV_TYPES_H_
