#include "kv/inmemory_node.h"

#include <algorithm>
#include <functional>

#include "common/clock.h"
#include "obs/names.h"

namespace txrep::kv {

InMemoryKvNode::InMemoryKvNode(KvNodeOptions options,
                               obs::MetricsRegistry* metrics, int node_index)
    : options_(options),
      failure_rate_(options.failure_rate),
      failure_rng_(options.failure_seed) {
  if (metrics == nullptr) return;
  obs::Labels node_label;
  if (node_index >= 0) node_label = {{"node", std::to_string(node_index)}};
  auto op_labels = [&](const char* op) {
    obs::Labels labels = node_label;
    labels.emplace_back("op", op);
    return labels;
  };
  c_gets_ = metrics->GetCounter(obs::kKvOps, op_labels("get"));
  c_puts_ = metrics->GetCounter(obs::kKvOps, op_labels("put"));
  c_deletes_ = metrics->GetCounter(obs::kKvOps, op_labels("delete"));
  c_get_misses_ = metrics->GetCounter(obs::kKvOps, op_labels("get_miss"));
  h_op_latency_ = metrics->GetHistogram(obs::kKvOpLatency, node_label);
  h_queue_wait_ = metrics->GetHistogram(obs::kKvQueueWait, node_label);
  h_batch_size_ = metrics->GetHistogram(obs::kKvBatchSize, node_label);
  g_slots_ = metrics->GetGauge(obs::kKvSlotsInUse, node_label);
}

InMemoryKvNode::Stripe& InMemoryKvNode::StripeFor(const Key& key) {
  return stripes_[std::hash<std::string>{}(key) % kNumStripes];
}

bool InMemoryKvNode::RollFailure() {
  const double failure_rate = failure_rate_.load(std::memory_order_relaxed);
  if (failure_rate <= 0.0) return false;
  bool fail;
  {
    check::MutexLock lock(&failure_mu_);
    fail = failure_rng_.Bernoulli(failure_rate);
  }
  if (fail) {
    check::MutexLock lock(&stats_mu_);
    ++stats_.injected_failures;
  }
  return fail;
}

int64_t InMemoryKvNode::OccupySlot(int64_t micros) {
  int64_t waited = 0;
  if (options_.service_slots > 0) {
    const int64_t arrive = NowMicros();
    {
      check::MutexLock lock(&gate_mu_);
      while (in_service_ >= options_.service_slots) gate_cv_.Wait();
      ++in_service_;
      if (g_slots_ != nullptr) g_slots_->Set(in_service_);
    }
    waited = NowMicros() - arrive;
    SleepForMicros(micros);
    {
      check::MutexLock lock(&gate_mu_);
      --in_service_;
      if (g_slots_ != nullptr) g_slots_->Set(in_service_);
      gate_cv_.NotifyOne();
    }
  } else {
    SleepForMicros(micros);
  }
  queue_wait_.Record(waited);
  if (h_queue_wait_ != nullptr) h_queue_wait_->Record(waited);
  return waited;
}

int64_t InMemoryKvNode::MarginalMicros() const {
  if (options_.batch_marginal_micros >= 0) {
    return options_.batch_marginal_micros;
  }
  return options_.service_time_micros / 8;
}

Status InMemoryKvNode::SimulateService() {
  const int64_t start = NowMicros();
  if (RollFailure()) return Status::Unavailable("injected node failure");
  OccupySlot(options_.service_time_micros);
  const int64_t elapsed = NowMicros() - start;
  op_latency_.Record(elapsed);
  if (h_op_latency_ != nullptr) h_op_latency_->Record(elapsed);
  return Status::OK();
}

Status InMemoryKvNode::Put(const Key& key, const Value& value) {
  TXREP_RETURN_IF_ERROR(SimulateService());
  Stripe& stripe = StripeFor(key);
  {
    check::WriterMutexLock lock(&stripe.mu);
    stripe.map[key] = value;
  }
  if (c_puts_ != nullptr) c_puts_->Increment();
  check::MutexLock lock(&stats_mu_);
  ++stats_.puts;
  return Status::OK();
}

Result<Value> InMemoryKvNode::Get(const Key& key) {
  TXREP_RETURN_IF_ERROR(SimulateService());
  Stripe& stripe = StripeFor(key);
  std::optional<Value> found;
  {
    check::ReaderMutexLock lock(&stripe.mu);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end()) found = it->second;
  }
  if (c_gets_ != nullptr) c_gets_->Increment();
  check::MutexLock lock(&stats_mu_);
  ++stats_.gets;
  if (!found.has_value()) {
    ++stats_.get_misses;
    if (c_get_misses_ != nullptr) c_get_misses_->Increment();
    return Status::NotFound("key \"" + key + "\" not present");
  }
  return *std::move(found);
}

Status InMemoryKvNode::Delete(const Key& key) {
  TXREP_RETURN_IF_ERROR(SimulateService());
  Stripe& stripe = StripeFor(key);
  {
    check::WriterMutexLock lock(&stripe.mu);
    stripe.map.erase(key);
  }
  if (c_deletes_ != nullptr) c_deletes_->Increment();
  check::MutexLock lock(&stats_mu_);
  ++stats_.deletes;
  return Status::OK();
}

Status InMemoryKvNode::MultiWrite(std::span<const KvWrite> batch,
                                  size_t* applied) {
  if (applied != nullptr) *applied = 0;
  if (batch.empty()) return Status::OK();
  const int64_t start = NowMicros();
  const int64_t service = options_.service_time_micros +
                          static_cast<int64_t>(batch.size() - 1) *
                              MarginalMicros();
  OccupySlot(service);
  Status first_error = Status::OK();
  int64_t puts = 0;
  int64_t deletes = 0;
  for (const KvWrite& w : batch) {
    // Per-entry roll in batch order: a batched replay consumes the same
    // failure-RNG stream as op-at-a-time replay, so equivalence tests can
    // compare the two under injected failures.
    if (RollFailure()) {
      if (first_error.ok()) {
        first_error = Status::Unavailable("injected node failure");
      }
      continue;
    }
    Stripe& stripe = StripeFor(w.key);
    {
      check::WriterMutexLock lock(&stripe.mu);
      if (w.tombstone) {
        stripe.map.erase(w.key);
      } else {
        stripe.map[w.key] = w.value;
      }
    }
    if (w.tombstone) {
      ++deletes;
      if (c_deletes_ != nullptr) c_deletes_->Increment();
    } else {
      ++puts;
      if (c_puts_ != nullptr) c_puts_->Increment();
    }
    if (applied != nullptr) ++*applied;
  }
  const int64_t elapsed = NowMicros() - start;
  op_latency_.Record(elapsed);
  if (h_op_latency_ != nullptr) h_op_latency_->Record(elapsed);
  if (h_batch_size_ != nullptr) {
    h_batch_size_->Record(static_cast<int64_t>(batch.size()));
  }
  {
    check::MutexLock lock(&stats_mu_);
    stats_.puts += puts;
    stats_.deletes += deletes;
    ++stats_.batches;
  }
  return first_error;
}

std::vector<Result<Value>> InMemoryKvNode::MultiGet(
    std::span<const Key> keys) {
  std::vector<Result<Value>> results;
  results.reserve(keys.size());
  if (keys.empty()) return results;
  const int64_t start = NowMicros();
  const int64_t service = options_.service_time_micros +
                          static_cast<int64_t>(keys.size() - 1) *
                              MarginalMicros();
  OccupySlot(service);
  int64_t gets = 0;
  int64_t misses = 0;
  for (const Key& key : keys) {
    if (RollFailure()) {
      results.push_back(Status::Unavailable("injected node failure"));
      continue;
    }
    ++gets;
    if (c_gets_ != nullptr) c_gets_->Increment();
    Stripe& stripe = StripeFor(key);
    std::optional<Value> found;
    {
      check::ReaderMutexLock lock(&stripe.mu);
      auto it = stripe.map.find(key);
      if (it != stripe.map.end()) found = it->second;
    }
    if (found.has_value()) {
      results.push_back(*std::move(found));
    } else {
      ++misses;
      if (c_get_misses_ != nullptr) c_get_misses_->Increment();
      results.push_back(Status::NotFound("key \"" + key + "\" not present"));
    }
  }
  const int64_t elapsed = NowMicros() - start;
  op_latency_.Record(elapsed);
  if (h_op_latency_ != nullptr) h_op_latency_->Record(elapsed);
  if (h_batch_size_ != nullptr) {
    h_batch_size_->Record(static_cast<int64_t>(keys.size()));
  }
  {
    check::MutexLock lock(&stats_mu_);
    stats_.gets += gets;
    stats_.get_misses += misses;
    ++stats_.batches;
  }
  return results;
}

bool InMemoryKvNode::Contains(const Key& key) {
  Stripe& stripe = StripeFor(key);
  check::ReaderMutexLock lock(&stripe.mu);
  return stripe.map.contains(key);
}

size_t InMemoryKvNode::Size() {
  size_t total = 0;
  for (Stripe& stripe : stripes_) {
    check::ReaderMutexLock lock(&stripe.mu);
    total += stripe.map.size();
  }
  return total;
}

StoreDump InMemoryKvNode::Dump() {
  StoreDump dump;
  for (Stripe& stripe : stripes_) {
    check::ReaderMutexLock lock(&stripe.mu);
    for (const auto& [k, v] : stripe.map) dump.emplace_back(k, v);
  }
  std::sort(dump.begin(), dump.end());
  return dump;
}

Status InMemoryKvNode::Clear() {
  // Stripes are cleared one at a time — callers requiring a consistent
  // "empty at one instant" view (checkpoint install) already hold the
  // replica quiescent.
  for (Stripe& stripe : stripes_) {
    check::WriterMutexLock lock(&stripe.mu);
    stripe.map.clear();
  }
  return Status::OK();
}

KvStoreStats InMemoryKvNode::stats() const {
  check::MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace txrep::kv
