#ifndef TXREP_MW_SUBSCRIBER_H_
#define TXREP_MW_SUBSCRIBER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "check/mutex.h"

#include "common/status.h"
#include "mw/broker.h"
#include "rel/txlog.h"
#include "trace/tracer.h"

namespace txrep::mw {

/// Start-up behaviour of a SubscriberAgent (recovery / bootstrap support).
struct SubscriberOptions {
  /// Transactions with lsn <= this are acknowledged but NOT handed to the
  /// sink — the replica already holds them (from a checkpoint snapshot or a
  /// direct log replay). A restarted replica resumes at its snapshot epoch
  /// instead of re-applying from LSN 0.
  uint64_t resume_after_lsn = 0;

  /// Start with the receive loop holding delivered messages in the
  /// subscription queue instead of consuming them. Online bootstrap
  /// subscribes paused *before* sampling the publisher position, so every
  /// message past the sample is provably either in the held queue or later;
  /// Resume()/ResumeFrom() opens the tap.
  bool start_paused = false;
};

/// The subscriber agent of the replication middleware (paper Appendix A):
/// receives replication messages, unpacks the logged transactions and hands
/// them — in LSN order — to the replica-side applier (the TM or the serial
/// baseline). The sequence-number assignment the paper describes (update
/// transactions numbered in log order, read-only transactions interleaved)
/// happens inside the sink: the TransactionManager numbers submissions in
/// arrival order, and this agent is the single submitter of update
/// transactions.
class SubscriberAgent {
 public:
  /// Called once per logged transaction, in order.
  using TxnSink = std::function<Status(rel::LogTransaction)>;

  /// Subscribes on `topic` and starts the receive thread immediately
  /// (paused when `options.start_paused`). `broker` (and `metrics` /
  /// `tracer`, when given) must outlive the agent. The tracer receives the
  /// broker and recv spans of every sampled transaction — the broker treats
  /// payloads as opaque bytes, so span recording for its hop happens here,
  /// from the message stamps, right after decode.
  SubscriberAgent(Broker* broker, const std::string& topic, TxnSink sink,
                  obs::MetricsRegistry* metrics = nullptr,
                  SubscriberOptions options = {},
                  trace::Tracer* tracer = nullptr);

  /// Same agent fed from an explicit MessageSource (e.g. a
  /// net::NetSubscription streaming frames from a remote broker). `source`
  /// must outlive the agent; Stop() closes it but does not destroy it.
  SubscriberAgent(MessageSource* source, TxnSink sink,
                  obs::MetricsRegistry* metrics = nullptr,
                  SubscriberOptions options = {},
                  trace::Tracer* tracer = nullptr);

  ~SubscriberAgent();

  SubscriberAgent(const SubscriberAgent&) = delete;
  SubscriberAgent& operator=(const SubscriberAgent&) = delete;

  /// Blocks until every transaction with lsn <= `lsn` has been handed to the
  /// sink (or the agent stopped). True on success, false if stopped first.
  bool WaitForLsn(uint64_t lsn);

  /// Opens the tap of a paused agent. No-op when already running.
  void Resume();

  /// Atomically raises resume_after_lsn to `lsn` (never lowers it) and
  /// resumes. Bootstrap calls this after installing state that already
  /// covers everything up to `lsn`, so queued duplicates are skipped.
  void ResumeFrom(uint64_t lsn);

  /// Stops the receive thread (drains nothing further). Idempotent.
  void Stop();

  /// Highest LSN handed to the sink so far.
  uint64_t applied_lsn() const;

  /// Sticky error from decoding or the sink (OK while healthy).
  Status health() const;

 private:
  void ReceiveLoop();

  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  MessageSource* subscription_;  // Owned by the broker / the caller.
  // analyze: lock-free(set in ctor, immutable afterwards)
  TxnSink sink_;
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  trace::Tracer* tracer_;  // Not owned; may be null.

  mutable check::Mutex mu_{"subscriber.mu"};
  check::CondVar cv_{&mu_};
  uint64_t applied_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  uint64_t resume_after_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  bool paused_ TXREP_GUARDED_BY(mu_) = false;
  Status health_ TXREP_GUARDED_BY(mu_) = Status::OK();
  bool stopped_ TXREP_GUARDED_BY(mu_) = false;

  std::atomic<bool> running_{true};
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread receive_thread_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_txns_received_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_recv_latency_ = nullptr;
};

}  // namespace txrep::mw

#endif  // TXREP_MW_SUBSCRIBER_H_
