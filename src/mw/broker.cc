#include "mw/broker.h"

#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"

namespace txrep::mw {

Broker::Broker(BrokerOptions options, obs::MetricsRegistry* metrics)
    : options_(options) {
  if (metrics != nullptr) {
    c_published_ = metrics->GetCounter(obs::kMwMessagesPublished);
    c_delivered_ = metrics->GetCounter(obs::kMwMessagesDelivered);
    h_deliver_latency_ = metrics->GetHistogram(
        obs::kStageLatency, {{"stage", obs::kStageBroker}});
    g_queue_depth_ =
        metrics->GetGauge(obs::kQueueDepth, {{"queue", obs::kQueueBroker}});
  }
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

Broker::~Broker() { Shutdown(); }

Broker::Subscription* Broker::Subscribe(const std::string& topic) {
  check::MutexLock lock(&mu_);
  auto subscription =
      std::make_unique<Subscription>(options_.subscriber_queue_capacity);
  Subscription* raw = subscription.get();
  topics_[topic].push_back(std::move(subscription));
  return raw;
}

void Broker::AttachFanout(const std::string& topic, Fanout fanout) {
  check::MutexLock lock(&mu_);
  fanouts_[topic].push_back(std::move(fanout));
}

Status Broker::Publish(std::string topic, std::string payload) {
  Message message;
  message.topic = std::move(topic);
  message.payload = std::move(payload);
  message.publish_micros = NowMicros();
  {
    check::MutexLock lock(&mu_);
    if (shutdown_) {
      TXREP_LOG(kWarn) << "Publish to topic \"" << message.topic
                       << "\" rejected: broker is shut down";
      return Status::Unavailable("broker is shut down");
    }
    ++published_;
  }
  if (!pending_.Push(std::move(message))) {
    // Shutdown raced in between the check above and the push: the message
    // was dropped, so take it back out of the published count — otherwise
    // published_ > delivered_ forever and bookkeeping (tests, dashboards)
    // reports a phantom in-flight message.
    {
      check::MutexLock lock(&mu_);
      --published_;
      flush_cv_.NotifyAll();
    }
    TXREP_LOG(kWarn) << "Publish rejected: broker queue closed mid-publish";
    return Status::Unavailable("broker is shut down");
  }
  if (c_published_ != nullptr) c_published_->Increment();
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
  }
  return Status::OK();
}

void Broker::DeliveryLoop() {
  for (;;) {
    std::optional<Message> message = pending_.Pop();
    if (!message.has_value()) return;  // Shut down and drained.
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
    }
    message->service_begin_micros = NowMicros();
    SleepForMicros(options_.delivery_delay_micros);
    message->deliver_micros = NowMicros();
    if (h_deliver_latency_ != nullptr) {
      h_deliver_latency_->Record(message->deliver_micros -
                                 message->publish_micros);
    }
    std::vector<Subscription*> targets;
    std::vector<Fanout*> fanouts;
    {
      check::MutexLock lock(&mu_);
      auto it = topics_.find(message->topic);
      if (it != topics_.end()) {
        for (const auto& sub : it->second) targets.push_back(sub.get());
      }
      auto fit = fanouts_.find(message->topic);
      if (fit != fanouts_.end()) {
        for (Fanout& fanout : fit->second) fanouts.push_back(&fanout);
      }
    }
    // Enqueue outside mu_ so bounded-subscriber backpressure cannot block
    // Subscribe()/Publish().
    for (Subscription* sub : targets) {
      sub->queue_.Push(*message);
    }
    // Fanouts (wire endpoints) run after local delivery, also outside mu_:
    // when a remote session stalls, this thread blocks here and publishers
    // feel it through the bounded pending_ queue.
    for (Fanout* fanout : fanouts) {
      (*fanout)(*message);
    }
    if (c_delivered_ != nullptr) c_delivered_->Increment();
    check::MutexLock lock(&mu_);
    ++delivered_;
    flush_cv_.NotifyAll();
  }
}

void Broker::Flush() {
  check::MutexLock lock(&mu_);
  while (delivered_ != published_ && !shutdown_) flush_cv_.Wait();
}

void Broker::Shutdown() {
  {
    check::MutexLock lock(&mu_);
    shutdown_ = true;
    flush_cv_.NotifyAll();
  }
  pending_.Close();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  // Close subscriber queues so blocked Pop()s return end-of-stream.
  check::MutexLock lock(&mu_);
  for (auto& [topic, subs] : topics_) {
    for (auto& sub : subs) sub->queue_.Close();
  }
}

int64_t Broker::published() const {
  check::MutexLock lock(&mu_);
  return published_;
}

int64_t Broker::delivered() const {
  check::MutexLock lock(&mu_);
  return delivered_;
}

}  // namespace txrep::mw
