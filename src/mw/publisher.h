#ifndef TXREP_MW_PUBLISHER_H_
#define TXREP_MW_PUBLISHER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "check/mutex.h"

#include "common/result.h"
#include "common/status.h"
#include "mw/broker.h"
#include "rel/txlog.h"
#include "trace/tracer.h"

namespace txrep::mw {

/// Publisher agent configuration.
struct PublisherOptions {
  /// Topic the replication messages go to.
  std::string topic = "txrep.log";

  /// Maximum transactions packed into one replication message.
  size_t batch_size = 100;

  /// Poll interval of the background pump (paper: "the frequency of reading
  /// the log is a tunable parameter").
  int64_t poll_interval_micros = 2000;

  /// Transactions with lsn <= this are never shipped (they are part of the
  /// initial snapshot the replica was loaded from).
  uint64_t start_after_lsn = 0;
};

/// The publisher agent of the replication middleware (paper Appendix A):
/// periodically reads the database transaction log, packs new transactions
/// into replication messages and publishes them to the broker.
class PublisherAgent {
 public:
  /// `log` and `broker` must outlive the agent. `metrics` (optional, same
  /// lifetime rule) receives the publish stage latency histogram and batch
  /// size distribution. `tracer` (optional, same lifetime rule) receives the
  /// publish span of every sampled transaction.
  PublisherAgent(rel::TxLog* log, Broker* broker, PublisherOptions options = {},
                 obs::MetricsRegistry* metrics = nullptr,
                 trace::Tracer* tracer = nullptr);

  ~PublisherAgent();

  PublisherAgent(const PublisherAgent&) = delete;
  PublisherAgent& operator=(const PublisherAgent&) = delete;

  /// Ships at most one batch of new transactions. Returns the number of
  /// transactions shipped (0 when the log has nothing new). Thread-safe:
  /// concurrent callers (the background pump + an explicit PumpAll) are
  /// serialized so a batch is never shipped twice.
  Result<size_t> PumpOnce();

  /// Ships everything currently in the log (possibly several messages).
  Status PumpAll();

  /// Starts / stops the background polling thread. Start is idempotent.
  void Start();
  void Stop();

  uint64_t shipped_lsn() const {
    return shipped_lsn_.load(std::memory_order_relaxed);
  }
  int64_t messages_published() const {
    return messages_published_.load(std::memory_order_relaxed);
  }

 private:
  void PumpLoop();

  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  rel::TxLog* log_;  // Not owned.
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  Broker* broker_;   // Not owned.
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  trace::Tracer* tracer_;  // Not owned; may be null.
  const PublisherOptions options_;

  /// Serializes PumpOnce (read-log + publish + advance).
  check::Mutex pump_mu_{"publisher.pump"};
  std::atomic<uint64_t> shipped_lsn_{0};
  std::atomic<int64_t> messages_published_{0};
  std::atomic<bool> running_{false};
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread pump_thread_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_publish_latency_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_batch_size_ = nullptr;
};

}  // namespace txrep::mw

#endif  // TXREP_MW_PUBLISHER_H_
