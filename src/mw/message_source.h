#ifndef TXREP_MW_MESSAGE_SOURCE_H_
#define TXREP_MW_MESSAGE_SOURCE_H_

#include <cstddef>
#include <optional>

namespace txrep::mw {

struct Message;

/// Where a SubscriberAgent's replication messages come from. Two
/// implementations exist: Broker::Subscription (in-process delivery, the
/// paper's single-machine middleware) and net::NetSubscription (frames over
/// a socket from a remote broker — DESIGN.md §13). The agent only ever sees
/// this interface, so the replica-side pipeline is byte-identical whichever
/// transport feeds it.
class MessageSource {
 public:
  virtual ~MessageSource() = default;

  /// Next message in publish order; blocks. nullopt once the stream ended
  /// (broker shutdown, source closed, or transport failure — implementations
  /// with a failure mode expose it separately).
  virtual std::optional<Message> Pop() = 0;

  /// Non-blocking variant of Pop().
  virtual std::optional<Message> TryPop() = 0;

  /// Ends the stream: blocked Pop()s drain queued messages and then see
  /// end-of-stream. Idempotent.
  virtual void Close() = 0;

  /// Messages delivered but not yet popped.
  virtual size_t Pending() const = 0;
};

}  // namespace txrep::mw

#endif  // TXREP_MW_MESSAGE_SOURCE_H_
