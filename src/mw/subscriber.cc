#include "mw/subscriber.h"

#include "codec/log_codec.h"
#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"

namespace txrep::mw {

SubscriberAgent::SubscriberAgent(Broker* broker, const std::string& topic,
                                 TxnSink sink, obs::MetricsRegistry* metrics,
                                 SubscriberOptions options,
                                 trace::Tracer* tracer)
    : SubscriberAgent(broker->Subscribe(topic), std::move(sink), metrics,
                      options, tracer) {}

SubscriberAgent::SubscriberAgent(MessageSource* source, TxnSink sink,
                                 obs::MetricsRegistry* metrics,
                                 SubscriberOptions options,
                                 trace::Tracer* tracer)
    : subscription_(source),
      sink_(std::move(sink)),
      tracer_(tracer) {
  // Everything at or below the resume point counts as already applied.
  applied_lsn_ = options.resume_after_lsn;
  resume_after_lsn_ = options.resume_after_lsn;
  paused_ = options.start_paused;
  if (metrics != nullptr) {
    c_txns_received_ = metrics->GetCounter(obs::kMwTxnsReceived);
    h_recv_latency_ = metrics->GetHistogram(
        obs::kStageLatency, {{"stage", obs::kStageReceive}});
  }
  receive_thread_ = std::thread([this] { ReceiveLoop(); });
}

SubscriberAgent::~SubscriberAgent() { Stop(); }

void SubscriberAgent::ReceiveLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    {
      // While paused, delivered messages pile up in the subscription queue
      // (unbounded by default) instead of reaching the sink.
      check::MutexLock lock(&mu_);
      while (paused_ && running_.load(std::memory_order_relaxed)) cv_.Wait();
    }
    if (!running_.load(std::memory_order_relaxed)) break;
    std::optional<Message> message = subscription_->TryPop();
    if (!message.has_value()) {
      // Blocking pop, but wake up periodically so Stop() is responsive even
      // while the broker stays alive.
      message = subscription_->Pop();
      if (!message.has_value()) break;  // Broker shut down.
    }
    Result<std::vector<rel::LogTransaction>> batch =
        codec::DecodeLogBatch(message->payload);
    if (!batch.ok()) {
      TXREP_LOG(kError) << "subscriber failed to decode replication message: "
                        << batch.status().ToString();
      check::MutexLock lock(&mu_);
      health_ = batch.status();
      cv_.NotifyAll();
      break;
    }
    const int64_t pop_micros = NowMicros();
    if (h_recv_latency_ != nullptr && message->deliver_micros != 0) {
      h_recv_latency_->Record(pop_micros - message->deliver_micros);
    }
    for (rel::LogTransaction& txn : *batch) {
      const uint64_t lsn = txn.lsn;
      if (tracer_ != nullptr && txn.trace.sampled) {
        // The broker hop, attributed from the message stamps (the broker
        // never decodes payloads): queue share = publish -> delivery-thread
        // pickup, service share = simulated delivery.
        tracer_->RecordSpan(
            txn.trace, lsn, trace::SpanStage::kBroker, message->publish_micros,
            message->deliver_micros,
            message->service_begin_micros > 0
                ? message->service_begin_micros - message->publish_micros
                : 0);
        // The recv hop: broker delivery -> hand-off to the apply sink. Time
        // spent in the subscription queue before the pop is queue wait.
        tracer_->RecordSpan(txn.trace, lsn, trace::SpanStage::kReceive,
                            message->deliver_micros, NowMicros(),
                            pop_micros - message->deliver_micros);
      }
      {
        // Duplicates below the resume point were installed from a snapshot
        // or direct log replay already. Duplicates at or below applied_lsn_
        // were applied by THIS agent — a reconnecting transport (wire
        // sessions resend whole retained batches that straddle the resume
        // point) redelivers them, and re-running their writes would fork the
        // replica from the primary. Either way: acknowledge, don't re-apply.
        check::MutexLock lock(&mu_);
        if (lsn <= resume_after_lsn_ || lsn <= applied_lsn_) {
          if (lsn > applied_lsn_) applied_lsn_ = lsn;
          cv_.NotifyAll();
          continue;
        }
      }
      Status s = sink_(std::move(txn));
      if (c_txns_received_ != nullptr) c_txns_received_->Increment();
      check::MutexLock lock(&mu_);
      if (!s.ok()) {
        TXREP_LOG(kError) << "subscriber sink rejected lsn " << lsn << ": "
                          << s.ToString();
        health_ = s;
        cv_.NotifyAll();
        return;
      }
      applied_lsn_ = lsn;
      cv_.NotifyAll();
    }
  }
  check::MutexLock lock(&mu_);
  stopped_ = true;
  cv_.NotifyAll();
}

bool SubscriberAgent::WaitForLsn(uint64_t lsn) {
  check::MutexLock lock(&mu_);
  while (applied_lsn_ < lsn && !stopped_ && health_.ok()) cv_.Wait();
  return applied_lsn_ >= lsn;
}

void SubscriberAgent::Resume() {
  check::MutexLock lock(&mu_);
  paused_ = false;
  cv_.NotifyAll();
}

void SubscriberAgent::ResumeFrom(uint64_t lsn) {
  check::MutexLock lock(&mu_);
  if (lsn > resume_after_lsn_) resume_after_lsn_ = lsn;
  if (lsn > applied_lsn_) applied_lsn_ = lsn;
  paused_ = false;
  cv_.NotifyAll();
}

void SubscriberAgent::Stop() {
  running_.store(false, std::memory_order_relaxed);
  {
    // Wake a receive thread parked on the pause gate.
    check::MutexLock lock(&mu_);
    cv_.NotifyAll();
  }
  // Close our subscription so a receive thread blocked in Pop() wakes up:
  // it drains whatever the broker already delivered, then sees
  // end-of-stream and exits. Without this, Stop() on a still-running broker
  // joined against a thread that would never wake (the pre-PR behavior).
  subscription_->Close();
  if (receive_thread_.joinable()) receive_thread_.join();
}

uint64_t SubscriberAgent::applied_lsn() const {
  check::MutexLock lock(&mu_);
  return applied_lsn_;
}

Status SubscriberAgent::health() const {
  check::MutexLock lock(&mu_);
  return health_;
}

}  // namespace txrep::mw
