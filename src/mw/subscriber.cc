#include "mw/subscriber.h"

#include "codec/log_codec.h"
#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"

namespace txrep::mw {

SubscriberAgent::SubscriberAgent(Broker* broker, const std::string& topic,
                                 TxnSink sink, obs::MetricsRegistry* metrics)
    : subscription_(broker->Subscribe(topic)), sink_(std::move(sink)) {
  if (metrics != nullptr) {
    c_txns_received_ = metrics->GetCounter(obs::kMwTxnsReceived);
    h_recv_latency_ = metrics->GetHistogram(
        obs::kStageLatency, {{"stage", obs::kStageReceive}});
  }
  receive_thread_ = std::thread([this] { ReceiveLoop(); });
}

SubscriberAgent::~SubscriberAgent() { Stop(); }

void SubscriberAgent::ReceiveLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    std::optional<Message> message = subscription_->TryPop();
    if (!message.has_value()) {
      // Blocking pop, but wake up periodically so Stop() is responsive even
      // while the broker stays alive.
      message = subscription_->Pop();
      if (!message.has_value()) break;  // Broker shut down.
    }
    Result<std::vector<rel::LogTransaction>> batch =
        codec::DecodeLogBatch(message->payload);
    if (!batch.ok()) {
      TXREP_LOG(kError) << "subscriber failed to decode replication message: "
                        << batch.status().ToString();
      check::MutexLock lock(&mu_);
      health_ = batch.status();
      cv_.NotifyAll();
      break;
    }
    if (h_recv_latency_ != nullptr && message->deliver_micros != 0) {
      h_recv_latency_->Record(NowMicros() - message->deliver_micros);
    }
    for (rel::LogTransaction& txn : *batch) {
      const uint64_t lsn = txn.lsn;
      Status s = sink_(std::move(txn));
      if (c_txns_received_ != nullptr) c_txns_received_->Increment();
      check::MutexLock lock(&mu_);
      if (!s.ok()) {
        TXREP_LOG(kError) << "subscriber sink rejected lsn " << lsn << ": "
                          << s.ToString();
        health_ = s;
        cv_.NotifyAll();
        return;
      }
      applied_lsn_ = lsn;
      cv_.NotifyAll();
    }
  }
  check::MutexLock lock(&mu_);
  stopped_ = true;
  cv_.NotifyAll();
}

bool SubscriberAgent::WaitForLsn(uint64_t lsn) {
  check::MutexLock lock(&mu_);
  while (applied_lsn_ < lsn && !stopped_ && health_.ok()) cv_.Wait();
  return applied_lsn_ >= lsn;
}

void SubscriberAgent::Stop() {
  running_.store(false, std::memory_order_relaxed);
  // Close our subscription so a receive thread blocked in Pop() wakes up:
  // it drains whatever the broker already delivered, then sees
  // end-of-stream and exits. Without this, Stop() on a still-running broker
  // joined against a thread that would never wake (the pre-PR behavior).
  subscription_->Close();
  if (receive_thread_.joinable()) receive_thread_.join();
}

uint64_t SubscriberAgent::applied_lsn() const {
  check::MutexLock lock(&mu_);
  return applied_lsn_;
}

Status SubscriberAgent::health() const {
  check::MutexLock lock(&mu_);
  return health_;
}

}  // namespace txrep::mw
