#ifndef TXREP_MW_BROKER_H_
#define TXREP_MW_BROKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/mutex.h"
#include "common/blocking_queue.h"
#include "common/status.h"
#include "mw/message_source.h"
#include "obs/metrics.h"

namespace txrep::mw {

/// One message on the wire: an opaque payload published to a topic.
struct Message {
  std::string topic;
  std::string payload;
  int64_t publish_micros = 0;  // Stamped by the broker at Publish().
  /// Stamped when the delivery thread picked the message up (before the
  /// simulated delivery delay): splits the broker hop into queue wait
  /// (publish -> pickup) and service (pickup -> deliver) for span recording.
  int64_t service_begin_micros = 0;
  int64_t deliver_micros = 0;  // Stamped by the broker at delivery.
};

/// Broker simulation knobs.
struct BrokerOptions {
  /// Simulated broker-side delivery latency per message, microseconds.
  int64_t delivery_delay_micros = 0;

  /// Bound on each subscriber queue (0 = unbounded). When a queue is full
  /// the delivery thread blocks — backpressure, like a real broker.
  size_t subscriber_queue_capacity = 0;
};

/// In-process publish/subscribe message broker — the ActiveMQ stand-in of
/// the paper's replication middleware (Appendix A). Topics, totally ordered
/// per-topic delivery, decoupled publishers/subscribers, optional simulated
/// delivery latency. A single delivery thread preserves publish order.
class Broker {
 public:
  /// `metrics` (optional, must outlive the broker) receives published /
  /// delivered counters, the broker_deliver stage latency histogram, and the
  /// pending-queue depth gauge.
  explicit Broker(BrokerOptions options = {},
                  obs::MetricsRegistry* metrics = nullptr);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Handle owned by a subscriber; Pop() blocks until a message or shutdown.
  /// The in-process MessageSource (net::NetSubscription is the remote one).
  class Subscription : public MessageSource {
   public:
    explicit Subscription(size_t queue_capacity) : queue_(queue_capacity) {}

    /// Next message, or nullopt once the broker shut down and the queue
    /// drained.
    std::optional<Message> Pop() override { return queue_.Pop(); }

    /// Non-blocking variant.
    std::optional<Message> TryPop() override { return queue_.TryPop(); }

    /// Ends this subscription's stream: blocked Pop()s drain the queue and
    /// then see end-of-stream, without waiting for broker shutdown. Messages
    /// delivered after Close() are dropped. Idempotent.
    void Close() override { queue_.Close(); }

    size_t Pending() const override { return queue_.size(); }

   private:
    friend class Broker;
    BlockingQueue<Message> queue_;
  };

  /// Called by the delivery thread for every message on `topic`, after the
  /// in-process subscriptions got their copy — the hook a NetEndpoint uses
  /// to fan batches out to remote replicas. A fanout that blocks (bounded
  /// session queues, credit exhaustion downstream) blocks delivery, which
  /// fills pending_, which blocks Publish(): exactly the backpressure chain
  /// the wire path needs (DESIGN.md §13). Attach before publishing traffic;
  /// fanouts cannot be detached (the broker outlives none of them).
  using Fanout = std::function<void(const Message&)>;
  void AttachFanout(const std::string& topic, Fanout fanout);

  /// Registers a new subscriber on `topic`. The returned object lives until
  /// the broker is destroyed.
  Subscription* Subscribe(const std::string& topic);

  /// Publishes a message; delivery is asynchronous (FIFO per topic across
  /// all topics, single delivery thread). Fails after Shutdown().
  Status Publish(std::string topic, std::string payload);

  /// Blocks until every published message has been delivered.
  void Flush();

  /// Stops delivery; idempotent. Subscribers drain their queues then see
  /// end-of-stream.
  void Shutdown();

  int64_t published() const;
  int64_t delivered() const;

 private:
  void DeliveryLoop();

  const BrokerOptions options_;

  // analyze: lock-free(BlockingQueue is internally synchronized)
  BlockingQueue<Message> pending_;
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread delivery_thread_;

  mutable check::Mutex mu_{"broker.mu"};
  std::map<std::string, std::vector<std::unique_ptr<Subscription>>> topics_
      TXREP_GUARDED_BY(mu_);
  std::map<std::string, std::vector<Fanout>> fanouts_ TXREP_GUARDED_BY(mu_);
  int64_t published_ TXREP_GUARDED_BY(mu_) = 0;
  int64_t delivered_ TXREP_GUARDED_BY(mu_) = 0;
  bool shutdown_ TXREP_GUARDED_BY(mu_) = false;

  check::CondVar flush_cv_{&mu_};

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_published_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_delivered_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_deliver_latency_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_queue_depth_ = nullptr;
};

}  // namespace txrep::mw

#endif  // TXREP_MW_BROKER_H_
