#include "mw/publisher.h"

#include "codec/log_codec.h"
#include "common/clock.h"

namespace txrep::mw {

PublisherAgent::PublisherAgent(rel::TxLog* log, Broker* broker,
                               PublisherOptions options)
    : log_(log), broker_(broker), options_(std::move(options)) {
  shipped_lsn_.store(options_.start_after_lsn, std::memory_order_relaxed);
}

PublisherAgent::~PublisherAgent() { Stop(); }

Result<size_t> PublisherAgent::PumpOnce() {
  std::lock_guard<std::mutex> lock(pump_mu_);
  const uint64_t from = shipped_lsn_.load(std::memory_order_relaxed);
  std::vector<rel::LogTransaction> batch =
      log_->ReadSince(from, options_.batch_size);
  if (batch.empty()) return size_t{0};
  const uint64_t last = batch.back().lsn;
  TXREP_RETURN_IF_ERROR(
      broker_->Publish(options_.topic, codec::EncodeLogBatch(batch)));
  shipped_lsn_.store(last, std::memory_order_relaxed);
  messages_published_.fetch_add(1, std::memory_order_relaxed);
  return batch.size();
}

Status PublisherAgent::PumpAll() {
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(size_t shipped, PumpOnce());
    if (shipped == 0) return Status::OK();
  }
}

void PublisherAgent::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  pump_thread_ = std::thread([this] { PumpLoop(); });
}

void PublisherAgent::Stop() {
  if (!running_.exchange(false)) return;
  if (pump_thread_.joinable()) pump_thread_.join();
}

void PublisherAgent::PumpLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<size_t> shipped = PumpOnce();
    if (!shipped.ok() || *shipped == 0) {
      SleepForMicros(options_.poll_interval_micros);
    }
  }
}

}  // namespace txrep::mw
