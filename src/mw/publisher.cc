#include "mw/publisher.h"

#include "codec/log_codec.h"
#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"

namespace txrep::mw {

PublisherAgent::PublisherAgent(rel::TxLog* log, Broker* broker,
                               PublisherOptions options,
                               obs::MetricsRegistry* metrics,
                               trace::Tracer* tracer)
    : log_(log),
      broker_(broker),
      tracer_(tracer),
      options_(std::move(options)) {
  shipped_lsn_.store(options_.start_after_lsn, std::memory_order_relaxed);
  if (metrics != nullptr) {
    h_publish_latency_ = metrics->GetHistogram(
        obs::kStageLatency, {{"stage", obs::kStagePublish}});
    h_batch_size_ = metrics->GetHistogram(obs::kMwBatchSize);
  }
}

PublisherAgent::~PublisherAgent() { Stop(); }

Result<size_t> PublisherAgent::PumpOnce() {
  check::MutexLock lock(&pump_mu_);
  const uint64_t from = shipped_lsn_.load(std::memory_order_relaxed);
  const int64_t pickup_micros = NowMicros();
  std::vector<rel::LogTransaction> batch =
      log_->ReadSince(from, options_.batch_size);
  if (batch.empty()) return size_t{0};
  const uint64_t last = batch.back().lsn;
  std::string payload = codec::EncodeLogBatch(batch);
  // The publish hop ends here, NOT after Publish() returns: the broker hop
  // starts at the stamp Publish() takes internally, so ending the publish
  // span any later would overlap the two whenever this thread is descheduled
  // inside the call (per-txn hop spans must tile the e2e window).
  const int64_t now = NowMicros();
  TXREP_RETURN_IF_ERROR(broker_->Publish(options_.topic, std::move(payload)));
  shipped_lsn_.store(last, std::memory_order_relaxed);
  messages_published_.fetch_add(1, std::memory_order_relaxed);
  if (h_publish_latency_ != nullptr || tracer_ != nullptr) {
    // Per-txn time from db commit to reaching the broker; the share before
    // the pump picked the batch up is log-tail queue wait.
    for (const rel::LogTransaction& txn : batch) {
      if (h_publish_latency_ != nullptr) {
        h_publish_latency_->Record(now - txn.commit_micros);
      }
      if (tracer_ != nullptr) {
        tracer_->RecordSpan(txn.trace, txn.lsn, trace::SpanStage::kPublish,
                            txn.commit_micros, now,
                            pickup_micros - txn.commit_micros);
      }
    }
  }
  if (h_batch_size_ != nullptr) {
    h_batch_size_->Record(static_cast<int64_t>(batch.size()));
  }
  return batch.size();
}

Status PublisherAgent::PumpAll() {
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(size_t shipped, PumpOnce());
    if (shipped == 0) return Status::OK();
  }
}

void PublisherAgent::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  pump_thread_ = std::thread([this] { PumpLoop(); });
}

void PublisherAgent::Stop() {
  if (!running_.exchange(false)) return;
  if (pump_thread_.joinable()) pump_thread_.join();
}

void PublisherAgent::PumpLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<size_t> shipped = PumpOnce();
    if (!shipped.ok()) {
      TXREP_LOG(kWarn) << "publisher pump failed: "
                       << shipped.status().ToString();
    }
    if (!shipped.ok() || *shipped == 0) {
      SleepForMicros(options_.poll_interval_micros);
    }
  }
}

}  // namespace txrep::mw
