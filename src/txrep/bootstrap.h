#ifndef TXREP_TXREP_BOOTSTRAP_H_
#define TXREP_TXREP_BOOTSTRAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "core/serial_applier.h"
#include "kv/kv_cluster.h"
#include "mw/subscriber.h"
#include "obs/metrics.h"
#include "qt/replica_reader.h"
#include "recov/catchup_gate.h"
#include "txrep/system.h"

namespace txrep {

/// Configuration of an online replica bootstrap (BootstrappedReplica::Attach).
struct BootstrapOptions {
  /// The new replica's key-value cluster (node count, backend, ...). A
  /// kDisk backend with its own disk_dir gives a durably bootstrapped
  /// replica.
  kv::KvClusterOptions cluster;

  /// Directory holding the primary's checkpoints. When a usable checkpoint
  /// exists the replica starts from it and only replays the log tail;
  /// otherwise it replays the full log from LSN 0.
  std::string checkpoint_dir;

  /// The catch-up gate admits reads once the replica is within this many
  /// LSNs of the primary.
  uint64_t max_admission_lag = 0;

  /// Poll interval of the background lag monitor feeding the gate.
  int64_t catchup_poll_micros = 1000;

  /// Write-set coalescing for the tail replay / gap-fill applier (see
  /// core::BatchDispatchOptions): bootstrap ships each replayed
  /// transaction's writes as MultiWrite chunks instead of per-op Puts.
  core::BatchDispatchOptions apply_batch;
};

/// A brand-new replica attached to a live TxRepSystem while writes keep
/// flowing — the recov subsystem's online bootstrap (ISSUE tentpole #3).
///
/// Attach() runs the handoff protocol:
///
///   1. Subscribe to the replication topic PAUSED. From this instant every
///      published message is either held in the subscription queue or yet to
///      be published — nothing can be missed.
///   2. Install the latest durable checkpoint (epoch E), or start empty.
///   3. Replay the database log tail (lsn > E) directly via ReadSince into a
///      private SerialApplier, bringing the replica to the log's current end.
///   4. ResumeFrom(last replayed LSN): the paused subscriber drains its held
///      queue, skipping everything the direct replay already covered, and
///      live apply takes over.
///
/// The apply sink is self-healing: if a delivered transaction's LSN jumps
/// past last_applied+1 (possible when messages published before step 1 were
/// compacted out of the queue bound, or the subscription raced publication),
/// the gap is fetched straight from the primary's log and replayed first.
/// Caveat: the primary must not truncate its log past the bootstrap point
/// while a bootstrap is in flight.
///
/// Reads go through Query(), which consults a CatchupGate: FailedPrecondition
/// until the replica has been within `max_admission_lag` LSNs of the primary
/// at least once.
class BootstrappedReplica {
 public:
  /// Attaches a new replica to `system` (which must be Start()ed and must
  /// outlive the returned replica). Returns after the initial state install
  /// and tail replay, with live replication flowing; use WaitUntilCaughtUp()
  /// to block until the read gate opens.
  static Result<std::unique_ptr<BootstrappedReplica>> Attach(
      TxRepSystem* system, BootstrapOptions options);

  ~BootstrappedReplica();

  BootstrappedReplica(const BootstrappedReplica&) = delete;
  BootstrappedReplica& operator=(const BootstrappedReplica&) = delete;

  /// Gated read: FailedPrecondition while the replica is still catching up,
  /// the SELECT result once the gate has opened.
  Result<std::vector<rel::Row>> Query(const rel::SelectStatement& stmt);

  /// Blocks until the catch-up gate opens (true) or the timeout expires.
  bool WaitUntilCaughtUp(int64_t timeout_micros);

  bool caught_up() const { return gate_->IsOpen(); }

  /// Highest LSN this replica's state covers (checkpoint install included).
  uint64_t replica_lsn() const {
    const uint64_t applied = applier_->last_applied_lsn();
    return applied > bootstrap_lsn_ ? applied : bootstrap_lsn_;
  }

  /// LSN the bootstrap resumed live replication from: everything <= this
  /// came from the checkpoint install + direct tail replay.
  uint64_t bootstrap_lsn() const { return bootstrap_lsn_; }

  /// True when step 2 installed a checkpoint (false = empty start).
  bool installed_checkpoint() const { return installed_checkpoint_; }

  /// Stops live replication and the lag monitor. Idempotent; the replica's
  /// cluster stays readable (and, for a disk backend, durable).
  void Detach();

  kv::KvCluster& cluster() { return *cluster_; }
  obs::MetricsRegistry& metrics() { return registry_; }
  const recov::CatchupGate& gate() const { return *gate_; }

 private:
  BootstrappedReplica(TxRepSystem* system, BootstrapOptions options);

  /// Runs handoff steps 1-4; on error the object is safe to destroy.
  Status Start();

  /// Subscriber sink: gap-fills from the primary log, then applies.
  Status ApplySink(rel::LogTransaction txn);

  /// Background lag monitor feeding the catch-up gate.
  void CatchupLoop();

  /// Declared first so it is destroyed last (components hold instruments).
  // analyze: lock-free(MetricsRegistry is internally synchronized)
  obs::MetricsRegistry registry_;

  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  TxRepSystem* system_;  // Not owned; must outlive this replica.
  // analyze: lock-free(set in ctor, immutable afterwards)
  BootstrapOptions options_;

  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<kv::KvCluster> cluster_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<core::SerialApplier> applier_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<qt::ReplicaReader> reader_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<recov::CatchupGate> gate_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<mw::SubscriberAgent> subscriber_;

  // analyze: lock-free(set during single-threaded bootstrap phase)
  uint64_t bootstrap_lsn_ = 0;
  // analyze: lock-free(set during single-threaded bootstrap phase)
  bool installed_checkpoint_ = false;

  /// Serializes ApplySink (subscriber thread) against nothing today — the
  /// subscriber is the only writer — but keeps the gap-fill + apply sequence
  /// atomic if a second submitter ever appears.
  check::Mutex apply_mu_{"txrep.bootstrap.apply"};

  std::atomic<bool> monitor_running_{false};
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread monitor_thread_;
  // analyze: lock-free(set before monitor thread starts; read at teardown after join)
  bool detached_ = false;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_tail_txns_ = nullptr;
};

}  // namespace txrep

#endif  // TXREP_TXREP_BOOTSTRAP_H_
