#include "txrep/system.h"

#include <algorithm>
#include <utility>

#include "codec/schema_codec.h"
#include "common/clock.h"
#include "obs/names.h"

namespace txrep {

TxRepSystem::TxRepSystem(TxRepOptions options)
    : options_(std::move(options)) {
  if (options_.trace.sample_every > 0) {
    tracer_ = std::make_unique<trace::Tracer>(options_.trace, &registry_);
    db_.log().EnableTracing(tracer_.get());
  }
  cluster_ = std::make_unique<kv::KvCluster>(options_.cluster, &registry_);
  db_.EnableMetrics(&registry_);
  h_readonly_latency_ = registry_.GetHistogram(obs::kReadOnlyLatency);
  if (options_.metrics_report_interval_micros > 0) {
    reporter_ = std::make_unique<obs::PeriodicReporter>(
        &registry_, options_.metrics_report_interval_micros,
        options_.metrics_report_sink);
  }
}

TxRepSystem::~TxRepSystem() {
  reporter_.reset();  // Stop sampling before the pipeline tears down.
  if (slo_ != nullptr) slo_->Stop();  // Poller probes the appliers below.
  if (publisher_ != nullptr) publisher_->Stop();
  // Close wire sessions before broker Shutdown: a session queue stalled on
  // a slow remote subscriber would otherwise park the delivery thread in the
  // fanout and hang the Shutdown join.
  if (net_endpoint_ != nullptr) net_endpoint_->Stop();
  if (broker_ != nullptr) broker_->Shutdown();   // Unblocks the subscriber.
  if (subscriber_ != nullptr) subscriber_->Stop();
  tm_.reset();  // Waits for in-flight transactions.
  lag_queue_.Close();
  if (lag_thread_.joinable()) lag_thread_.join();
}

Status TxRepSystem::Start() {
  if (started_) {
    return Status::FailedPrecondition("TxRepSystem already started");
  }
  TXREP_RETURN_IF_ERROR(cluster_->init_status());
  translator_ = std::make_unique<qt::QueryTranslator>(&db_.catalog(),
                                                      options_.blink);
  reader_ = std::make_unique<qt::ReplicaReader>(&db_.catalog(), options_.blink,
                                                &registry_);

  bool resumed = false;
  if (!options_.recovery.checkpoint_dir.empty()) {
    checkpoint_writer_ = std::make_unique<recov::CheckpointWriter>(
        options_.recovery.checkpoint_dir, &registry_);
    checkpoint_writer_->set_faults(options_.recovery.faults);
    if (options_.recovery.resume_from_checkpoint) {
      Result<recov::LoadedCheckpoint> loaded = recov::LoadLatestCheckpoint(
          options_.recovery.checkpoint_dir, &registry_);
      if (loaded.ok()) {
        const uint64_t epoch = loaded->manifest.snapshot_epoch;
        // LSNs are dense, so the log tail is usable iff its first entry past
        // the epoch is exactly epoch + 1 (or the log holds nothing newer).
        std::vector<rel::LogTransaction> head = db_.log().ReadSince(epoch, 1);
        if (!head.empty() && head.front().lsn != epoch + 1) {
          return Status::Corruption(
              "transaction log truncated past checkpoint epoch " +
              std::to_string(epoch) + " (next available LSN is " +
              std::to_string(head.front().lsn) + ")");
        }
        TXREP_RETURN_IF_ERROR(recov::InstallCheckpoint(*loaded, *cluster_));
        if (options_.recovery.compact_after_install) {
          TXREP_RETURN_IF_ERROR(cluster_->CompactAll());
        }
        snapshot_lsn_ = epoch;
        resumed = true;
        resumed_from_checkpoint_ = true;
      } else if (!loaded.status().IsNotFound()) {
        return loaded.status();
      }
    }
  }
  if (!resumed) {
    // Cold start. A reopened disk-backed cluster without a usable checkpoint
    // holds state of an unknown LSN — replaying on top of it would diverge,
    // so drop it and copy the database snapshot fresh.
    if (cluster_->Size() != 0) {
      TXREP_RETURN_IF_ERROR(cluster_->Clear());
    }
    TXREP_RETURN_IF_ERROR(translator_->LoadSnapshot(cluster_.get(), db_));
    snapshot_lsn_ = db_.log().LastLsn();
  }
  const uint64_t snapshot_lsn = snapshot_lsn_;

  if (options_.slo.enabled) {
    slo_ = std::make_unique<trace::SloWatchdog>(options_.slo, &registry_,
                                                tracer_.get());
  }
  if (options_.concurrent_replication) {
    tm_ = std::make_unique<core::TransactionManager>(
        cluster_.get(), translator_.get(), options_.tm, &registry_,
        tracer_.get(), slo_.get());
  } else {
    serial_ = std::make_unique<core::SerialApplier>(
        cluster_.get(), translator_.get(), &registry_,
        core::BatchDispatchOptions{}, tracer_.get(), slo_.get());
  }
  if (slo_ != nullptr) {
    slo_->SetProgressProbe([this] {
      trace::SloProbe probe;
      // Genuinely applied progress (the TM path may still have subscriber-
      // delivered transactions in flight; hand-off is not progress).
      const uint64_t applied = tm_ != nullptr ? tm_->last_applied_lsn()
                                              : serial_->last_applied_lsn();
      probe.applied_lsn = std::max(applied, snapshot_lsn_);
      const uint64_t last = db_.log().LastLsn();
      probe.backlog = last > probe.applied_lsn
                          ? static_cast<int64_t>(last - probe.applied_lsn)
                          : 0;
      return probe;
    });
    slo_->Start();
  }

  if (options_.measure_lag) {
    lag_thread_ = std::thread([this] { LagLoop(); });
  }

  broker_ = std::make_unique<mw::Broker>(options_.broker, &registry_);
  mw::PublisherOptions pub_options = options_.publisher;
  pub_options.start_after_lsn = snapshot_lsn;
  publisher_ = std::make_unique<mw::PublisherAgent>(
      &db_.log(), broker_.get(), pub_options, &registry_, tracer_.get());
  subscriber_ = std::make_unique<mw::SubscriberAgent>(
      broker_.get(), pub_options.topic,
      [this](rel::LogTransaction txn) { return ApplySink(std::move(txn)); },
      &registry_, mw::SubscriberOptions{}, tracer_.get());
  publisher_->Start();
  started_ = true;
  return Status::OK();
}

Status TxRepSystem::ApplySink(rel::LogTransaction txn) {
  const int64_t commit_micros = txn.commit_micros;
  if (tm_ != nullptr) {
    std::shared_ptr<core::Transaction> handle =
        tm_->SubmitUpdate(std::move(txn));
    if (options_.measure_lag) {
      lag_queue_.Push(LagProbe{std::move(handle), commit_micros});
    }
    return tm_->health();
  }
  {
    // Shared against Checkpoint()'s exclusive hold: a snapshot never
    // observes a transaction half-applied by the serial path.
    check::ReaderMutexLock lock(&apply_gate_);
    TXREP_RETURN_IF_ERROR(serial_->Apply(txn));
  }
  if (options_.measure_lag) {
    lag_histogram_.Record(NowMicros() - commit_micros);
  }
  return Status::OK();
}

Result<recov::CheckpointStats> TxRepSystem::Checkpoint() {
  if (!started_) {
    return Status::FailedPrecondition("TxRepSystem not started");
  }
  if (checkpoint_writer_ == nullptr) {
    return Status::InvalidArgument(
        "no recovery.checkpoint_dir configured for this deployment");
  }
  Result<recov::CheckpointStats> result =
      Status::Internal("checkpoint callback never ran");
  auto write = [&]() -> Status {
    // At the quiescent point the replica holds exactly the dense transaction
    // prefix through last_applied (submissions are parked, nothing is in
    // flight), so last_applied is the snapshot epoch.
    const uint64_t applied = tm_ != nullptr ? tm_->last_applied_lsn()
                                            : serial_->last_applied_lsn();
    const uint64_t epoch = std::max(applied, snapshot_lsn_);
    result = checkpoint_writer_->Write(epoch, *cluster_);
    return result.ok() ? Status::OK() : result.status();
  };
  if (tm_ != nullptr) {
    TXREP_RETURN_IF_ERROR(tm_->QuiesceBarrier(write));
  } else {
    check::WriterMutexLock lock(&apply_gate_);
    TXREP_RETURN_IF_ERROR(write());
  }
  if (options_.recovery.prune_old_checkpoints) {
    // analyze: discard(best-effort: stale checkpoints are garbage, not corruption)
    (void)checkpoint_writer_->Prune(result->epoch);
  }
  return result;
}

void TxRepSystem::set_checkpoint_faults(
    const recov::CheckpointFaults& faults) {
  options_.recovery.faults = faults;
  if (checkpoint_writer_ != nullptr) checkpoint_writer_->set_faults(faults);
}

void TxRepSystem::LagLoop() {
  for (;;) {
    std::optional<LagProbe> probe = lag_queue_.Pop();
    if (!probe.has_value()) return;
    if (probe->handle != nullptr) {
      // analyze: discard(lag probe only measures elapsed time; apply errors surface on the apply path itself)
      (void)probe->handle->Wait();
    }
    lag_histogram_.Record(NowMicros() - probe->commit_micros);
  }
}

Status TxRepSystem::AttachWireEndpoint(net::EndpointOptions options) {
  if (!started_) {
    return Status::FailedPrecondition("call Start() before serving");
  }
  if (net_endpoint_ != nullptr) return Status::OK();
  options.topic = options_.publisher.topic;
  net_endpoint_ =
      std::make_unique<net::NetEndpoint>(broker_.get(), std::move(options),
                                         &registry_);
  net_endpoint_->SetCatalog(codec::EncodeCatalog(db_.catalog()));
  // Everything the publisher shipped before this point never reached the
  // endpoint's retention; a remote replica resuming below it must bootstrap
  // from a checkpoint instead of replaying a stream with a silent gap.
  net_endpoint_->SetRetentionFloor(publisher_->shipped_lsn());
  return Status::OK();
}

Status TxRepSystem::ServeReplication(uint16_t port) {
  TXREP_RETURN_IF_ERROR(AttachWireEndpoint());
  return net_endpoint_->ListenAndServe(port);
}

Status TxRepSystem::SyncToLatest() {
  if (!started_) {
    return Status::FailedPrecondition("TxRepSystem not started");
  }
  TXREP_RETURN_IF_ERROR(publisher_->PumpAll());
  broker_->Flush();
  const uint64_t target = db_.log().LastLsn();
  // Transactions at or below the snapshot LSN were never shipped (the
  // snapshot already contains them) — only wait for genuinely shipped ones.
  if (target > snapshot_lsn_ && !subscriber_->WaitForLsn(target)) {
    Status health = subscriber_->health();
    return health.ok() ? Status::Aborted("subscriber stopped before catch-up")
                       : health;
  }
  if (tm_ != nullptr) {
    return tm_->WaitIdle();
  }
  return subscriber_->health();
}

Result<std::vector<rel::Row>> TxRepSystem::QueryReplica(
    const rel::SelectStatement& stmt) {
  if (!started_) {
    return Status::FailedPrecondition("TxRepSystem not started");
  }
  if (tm_ == nullptr) {
    return QueryReplicaNonTransactional(stmt);
  }
  const int64_t start = NowMicros();
  auto rows = std::make_shared<std::vector<rel::Row>>();
  auto handle = tm_->SubmitReadOnly([this, stmt, rows](kv::KvStore* view) {
    TXREP_ASSIGN_OR_RETURN(*rows, reader_->Select(view, stmt));
    return Status::OK();
  });
  TXREP_RETURN_IF_ERROR(handle->Wait());
  h_readonly_latency_->Record(NowMicros() - start);
  return std::move(*rows);
}

Status TxRepSystem::RunReadOnlyTransaction(
    const std::function<Status(kv::KvStore*, const qt::ReplicaReader&)>&
        body) {
  if (!started_) {
    return Status::FailedPrecondition("TxRepSystem not started");
  }
  const int64_t start = NowMicros();
  Status status;
  if (tm_ == nullptr) {
    status = body(cluster_.get(), *reader_);
  } else {
    auto handle = tm_->SubmitReadOnly(
        [this, &body](kv::KvStore* view) { return body(view, *reader_); });
    status = handle->Wait();
  }
  if (status.ok()) h_readonly_latency_->Record(NowMicros() - start);
  return status;
}

Result<std::vector<rel::Row>> TxRepSystem::QueryReplicaNonTransactional(
    const rel::SelectStatement& stmt) {
  if (reader_ == nullptr) {
    return Status::FailedPrecondition("TxRepSystem not started");
  }
  return reader_->Select(cluster_.get(), stmt);
}

core::TmStats TxRepSystem::tm_stats() const {
  return tm_ != nullptr ? tm_->stats() : core::TmStats{};
}

Result<qt::ConsistencyReport> TxRepSystem::AuditReplica() {
  if (!started_) {
    return Status::FailedPrecondition("TxRepSystem not started");
  }
  return qt::CheckReplicaConsistency(*cluster_, db_, *translator_);
}

uint64_t TxRepSystem::TruncateReplicatedLog() {
  // Only transactions the replica *applied* may be dropped; for the TM path
  // an LSN handed to the subscriber may still be in flight, so wait for the
  // manager to drain before reading the watermark.
  if (tm_ != nullptr) {
    // analyze: discard(drain before reading the watermark; on timeout the stale watermark just truncates less)
    (void)tm_->WaitIdle();
  }
  const uint64_t watermark = replica_lsn();
  if (watermark > 0) {
    db_.log().TruncateUpTo(watermark);
  }
  return watermark;
}

uint64_t TxRepSystem::replica_lsn() const {
  const uint64_t shipped =
      subscriber_ != nullptr ? subscriber_->applied_lsn() : 0;
  return std::max(shipped, snapshot_lsn_);
}

}  // namespace txrep
