#include "txrep/remote_replica.h"

#include <utility>

#include "codec/schema_codec.h"
#include "common/logging.h"
#include "net/socket.h"

namespace txrep {

RemoteReplica::RemoteReplica(RemoteReplicaOptions options)
    : options_(std::move(options)) {}

RemoteReplica::~RemoteReplica() { Stop(); }

Status RemoteReplica::Start() {
  if (started_) return Status::InvalidArgument("replica already started");

  net::NetSubscription::SocketFactory factory = options_.socket_factory;
  if (!factory) {
    factory = [host = options_.host, port = options_.port]() {
      return net::Socket::Connect(host, port);
    };
  }
  subscription_ = std::make_unique<net::NetSubscription>(
      std::move(factory), options_.subscription, &registry_);
  TXREP_RETURN_IF_ERROR(subscription_->WaitConnected());

  // The handshake carried the primary's catalog: rebuild the relational
  // layout locally so key encoding and index maintenance match the primary's
  // byte for byte.
  const std::string encoded_catalog = subscription_->catalog();
  if (encoded_catalog.empty()) {
    return Status::Corruption("subscribe ack carried no catalog");
  }
  TXREP_ASSIGN_OR_RETURN(catalog_, codec::DecodeCatalog(encoded_catalog));

  cluster_ = std::make_unique<kv::KvCluster>(options_.cluster, &registry_);
  TXREP_RETURN_IF_ERROR(cluster_->init_status());

  translator_ =
      std::make_unique<qt::QueryTranslator>(&catalog_, options_.blink);
  if (options_.subscription.resume_after_lsn == 0) {
    // Fresh replica: plant the empty B-link roots before any transaction
    // touches them. A resuming replica already has them (from its
    // checkpoint), and re-planting would wipe live index state.
    TXREP_RETURN_IF_ERROR(translator_->InitializeIndexes(cluster_.get()));
  }

  serial_ = std::make_unique<core::SerialApplier>(cluster_.get(),
                                                  translator_.get(),
                                                  &registry_);

  mw::SubscriberOptions agent_options;
  agent_options.resume_after_lsn = options_.subscription.resume_after_lsn;
  agent_ = std::make_unique<mw::SubscriberAgent>(
      subscription_.get(),
      [this](rel::LogTransaction txn) { return serial_->Apply(txn); },
      &registry_, agent_options);

  started_ = true;
  return Status::OK();
}

bool RemoteReplica::WaitForLsn(uint64_t lsn) {
  if (agent_ == nullptr) return false;
  return agent_->WaitForLsn(lsn);
}

uint64_t RemoteReplica::applied_lsn() const {
  if (agent_ == nullptr) return 0;
  return agent_->applied_lsn();
}

Status RemoteReplica::health() const {
  if (subscription_ != nullptr && !subscription_->health().ok()) {
    return subscription_->health();
  }
  if (agent_ != nullptr) return agent_->health();
  return Status::OK();
}

void RemoteReplica::Stop() {
  // Subscription first: closing the source ends the agent's receive loop
  // with a clean end-of-stream instead of a mid-pop race.
  if (subscription_ != nullptr) subscription_->Close();
  if (agent_ != nullptr) agent_->Stop();
}

}  // namespace txrep
