#include "txrep/bootstrap.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "obs/names.h"
#include "qt/query_translator.h"

namespace txrep {

namespace {

/// Log tail batches replayed per ReadSince round trip during bootstrap.
constexpr size_t kTailBatch = 256;

}  // namespace

Result<std::unique_ptr<BootstrappedReplica>> BootstrappedReplica::Attach(
    TxRepSystem* system, BootstrapOptions options) {
  if (system == nullptr) {
    return Status::InvalidArgument("bootstrap: null system");
  }
  if (system->broker() == nullptr) {
    return Status::FailedPrecondition(
        "bootstrap: system is not started (no broker)");
  }
  std::unique_ptr<BootstrappedReplica> replica(
      new BootstrappedReplica(system, std::move(options)));
  TXREP_RETURN_IF_ERROR(replica->Start());
  return replica;
}

BootstrappedReplica::BootstrappedReplica(TxRepSystem* system,
                                         BootstrapOptions options)
    : system_(system), options_(std::move(options)) {}

BootstrappedReplica::~BootstrappedReplica() { Detach(); }

Status BootstrappedReplica::Start() {
  cluster_ = std::make_unique<kv::KvCluster>(options_.cluster, &registry_);
  TXREP_RETURN_IF_ERROR(cluster_->init_status());

  const qt::QueryTranslator& translator = system_->translator();
  // The primary's tracer (if any) also covers this replica's applies: a
  // sampled transaction gets an apply/e2e span per replica that applies it.
  applier_ = std::make_unique<core::SerialApplier>(
      cluster_.get(), &translator, &registry_, options_.apply_batch,
      system_->tracer());
  reader_ = std::make_unique<qt::ReplicaReader>(
      &translator.catalog(), translator.blink_options(), &registry_);
  gate_ = std::make_unique<recov::CatchupGate>(options_.max_admission_lag,
                                               &registry_);
  c_tail_txns_ = registry_.GetCounter(obs::kRecovTailTxns);

  // Step 1: subscribe PAUSED before looking at any replication state. Every
  // message published from here on is held for us; nothing can be missed.
  mw::SubscriberOptions sub_options;
  sub_options.start_paused = true;
  subscriber_ = std::make_unique<mw::SubscriberAgent>(
      system_->broker(), system_->topic(),
      [this](rel::LogTransaction txn) { return ApplySink(std::move(txn)); },
      &registry_, sub_options);

  // Step 2: install the latest durable checkpoint, or start empty.
  uint64_t epoch = 0;
  if (!options_.checkpoint_dir.empty()) {
    Result<recov::LoadedCheckpoint> loaded =
        recov::LoadLatestCheckpoint(options_.checkpoint_dir, &registry_);
    if (loaded.ok()) {
      TXREP_RETURN_IF_ERROR(recov::InstallCheckpoint(*loaded, *cluster_));
      epoch = loaded->manifest.snapshot_epoch;
      installed_checkpoint_ = true;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  if (!installed_checkpoint_) {
    // Fresh replica replaying from LSN 0: it needs the empty range-index
    // roots the primary's initial snapshot would have carried.
    TXREP_RETURN_IF_ERROR(translator.InitializeIndexes(cluster_.get()));
  }

  // Step 3: replay the log tail (lsn > epoch) directly from the primary's
  // transaction log — far faster than waiting for redelivery, and it bounds
  // how much the paused subscription queue has to hold.
  uint64_t after = epoch;
  while (true) {
    std::vector<rel::LogTransaction> batch =
        system_->database().log().ReadSince(after, kTailBatch);
    if (batch.empty()) break;
    if (batch.front().lsn != after + 1) {
      return Status::Corruption(
          "bootstrap: transaction log truncated past checkpoint epoch " +
          std::to_string(epoch) + " (first tail lsn " +
          std::to_string(batch.front().lsn) + ", expected " +
          std::to_string(after + 1) + ")");
    }
    for (const rel::LogTransaction& txn : batch) {
      TXREP_RETURN_IF_ERROR(applier_->Apply(txn));
      if (c_tail_txns_ != nullptr) c_tail_txns_->Increment();
    }
    after = batch.back().lsn;
  }
  bootstrap_lsn_ = after;

  // Step 4: open the tap. Held (and future) messages with lsn <= after are
  // acknowledged without re-applying; live replication takes over beyond it.
  subscriber_->ResumeFrom(after);

  gate_->Update(after, system_->database().log().LastLsn());
  monitor_running_.store(true, std::memory_order_release);
  monitor_thread_ = std::thread([this] { CatchupLoop(); });
  return Status::OK();
}

Status BootstrappedReplica::ApplySink(rel::LogTransaction txn) {
  check::MutexLock lock(&apply_mu_);
  const uint64_t last =
      std::max(applier_->last_applied_lsn(), bootstrap_lsn_);
  if (txn.lsn <= last) return Status::OK();  // Duplicate redelivery.
  if (txn.lsn > last + 1) {
    // Self-healing gap fill: a message published before we subscribed fell
    // outside both the held queue and the direct tail replay (the publisher
    // raced our subscription). Fetch the missing range straight from the
    // primary's log. Requires the primary not to truncate past `last`.
    std::vector<rel::LogTransaction> missing =
        system_->database().log().ReadSince(last, txn.lsn - last - 1);
    if (missing.empty() || missing.front().lsn != last + 1 ||
        missing.back().lsn != txn.lsn - 1) {
      return Status::Corruption(
          "bootstrap: lsn gap " + std::to_string(last + 1) + ".." +
          std::to_string(txn.lsn - 1) +
          " not recoverable from the primary log");
    }
    for (const rel::LogTransaction& fill : missing) {
      TXREP_RETURN_IF_ERROR(applier_->Apply(fill));
      if (c_tail_txns_ != nullptr) c_tail_txns_->Increment();
    }
  }
  TXREP_RETURN_IF_ERROR(applier_->Apply(txn));
  gate_->Update(txn.lsn, system_->database().log().LastLsn());
  return Status::OK();
}

void BootstrappedReplica::CatchupLoop() {
  while (monitor_running_.load(std::memory_order_acquire)) {
    const uint64_t applied =
        std::max(applier_->last_applied_lsn(), bootstrap_lsn_);
    gate_->Update(applied, system_->database().log().LastLsn());
    if (gate_->IsOpen()) return;  // Opens once, permanently.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.catchup_poll_micros));
  }
}

Result<std::vector<rel::Row>> BootstrappedReplica::Query(
    const rel::SelectStatement& stmt) {
  TXREP_RETURN_IF_ERROR(gate_->CheckReadAdmissible());
  return reader_->Select(cluster_.get(), stmt);
}

bool BootstrappedReplica::WaitUntilCaughtUp(int64_t timeout_micros) {
  return gate_->WaitUntilOpenFor(timeout_micros);
}

void BootstrappedReplica::Detach() {
  if (detached_) return;
  detached_ = true;
  if (subscriber_ != nullptr) subscriber_->Stop();
  monitor_running_.store(false, std::memory_order_release);
  if (monitor_thread_.joinable()) monitor_thread_.join();
}

}  // namespace txrep
