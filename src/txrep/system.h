#ifndef TXREP_TXREP_SYSTEM_H_
#define TXREP_TXREP_SYSTEM_H_

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "blink/blink_tree.h"
#include "common/blocking_queue.h"
#include "common/histogram.h"
#include "common/result.h"
#include "core/serial_applier.h"
#include "core/transaction_manager.h"
#include "kv/kv_cluster.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "mw/subscriber.h"
#include "net/endpoint.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "qt/consistency_checker.h"
#include "qt/query_translator.h"
#include "qt/replica_reader.h"
#include "recov/checkpoint.h"
#include "rel/database.h"
#include "trace/slo.h"
#include "trace/tracer.h"

namespace txrep {

/// Checkpoint / restart behaviour of a deployment (the recov subsystem).
struct RecoveryOptions {
  /// Non-empty enables checkpointing: directory receiving the per-node
  /// snapshot files, manifests and the durable replication cursor. A
  /// restarted system pointed at the same directory resumes from the newest
  /// usable checkpoint instead of re-copying the full database snapshot.
  std::string checkpoint_dir;

  /// Look for a checkpoint at Start() and resume from it when one is usable
  /// (otherwise fall back to the cold snapshot copy).
  bool resume_from_checkpoint = true;

  /// Delete superseded checkpoints after each successful Checkpoint().
  bool prune_old_checkpoints = true;

  /// Compact disk-backed nodes right after a checkpoint install (the
  /// install rewrote every key, leaving the node logs full of dead history).
  bool compact_after_install = true;

  /// Crash-injection knobs for the checkpoint protocol (tests only).
  recov::CheckpointFaults faults;
};

/// End-to-end configuration of a TxRep deployment.
struct TxRepOptions {
  /// Replica key-value cluster (node count, simulated service time, ...).
  kv::KvClusterOptions cluster;

  /// Transaction manager knobs (thread pools, GC threshold, ...).
  core::TmOptions tm;

  /// Broker simulation (delivery latency).
  mw::BrokerOptions broker;

  /// Publisher agent (batch size, poll interval).
  mw::PublisherOptions publisher;

  /// B-link tree fanout for the replica's range indexes.
  blink::BlinkTreeOptions blink;

  /// true: the paper's concurrent TM applies transactions.
  /// false: the single-threaded serial baseline.
  bool concurrent_replication = true;

  /// Record per-transaction replication lag (DB commit -> replica apply).
  bool measure_lag = false;

  /// > 0: a background reporter thread dumps the metrics registry at this
  /// interval (to the log by default, or to `metrics_report_sink`).
  int64_t metrics_report_interval_micros = 0;

  /// Optional sink for the periodic reporter (null = log a text dump).
  obs::PeriodicReporter::Sink metrics_report_sink;

  /// Checkpoint / restart configuration (off unless checkpoint_dir is set).
  RecoveryOptions recovery;

  /// Per-transaction distributed tracing (off unless sample_every > 0):
  /// sampled transactions carry a trace context from DB commit through the
  /// pipeline and every hop records spans into the flight recorder.
  trace::TracerOptions trace;

  /// Replica-lag SLO watchdog (off unless slo.enabled): burn-rate tracking
  /// over sliding windows plus an apply-progress stall detector that dumps
  /// the flight recorder.
  trace::SloOptions slo;
};

/// The whole TxRep deployment of paper Fig. 3 in one object:
///
///   Database (rel) --log--> PublisherAgent --Broker--> SubscriberAgent
///        --> {TransactionManager | SerialApplier} --QT--> KvCluster
///
/// Usage:
///   TxRepSystem sys(options);
///   ... create schema + populate sys.database() ...
///   sys.Start();                       // snapshot to replica, begin shipping
///   ... run write transactions on sys.database() ...
///   sys.SyncToLatest();                // drain the pipeline
///   sys.QueryReplica(select);          // read-only workload on the replica
class TxRepSystem {
 public:
  explicit TxRepSystem(TxRepOptions options = {});
  ~TxRepSystem();

  TxRepSystem(const TxRepSystem&) = delete;
  TxRepSystem& operator=(const TxRepSystem&) = delete;

  /// The original relational database (run the read/write workload here).
  rel::Database& database() { return db_; }

  /// The replica cluster (raw key-value access).
  kv::KvCluster& replica() { return *cluster_; }

  /// Copies the current database snapshot into the replica and starts the
  /// replication pipeline (publisher polling, subscriber applying). Call
  /// once, after schema creation and initial population.
  Status Start();

  /// Ships and applies everything committed so far; blocks until the replica
  /// caught up. Returns the pipeline health.
  Status SyncToLatest();

  /// Takes a durable checkpoint of the replica at a consistent transaction
  /// boundary: drains the in-flight transactions (TM quiescent barrier, or
  /// the serial apply gate), snapshots every cluster node at the last
  /// applied LSN (the snapshot epoch), and advances the durable cursor.
  /// Writes keep flowing on the database side throughout; only replica
  /// apply pauses. Requires options().recovery.checkpoint_dir.
  Result<recov::CheckpointStats> Checkpoint();

  /// True when Start() resumed from a checkpoint instead of cold-copying
  /// the database snapshot.
  bool resumed_from_checkpoint() const { return resumed_from_checkpoint_; }

  /// Replaces the crash-injection knobs for subsequent Checkpoint() calls
  /// (tests only).
  void set_checkpoint_faults(const recov::CheckpointFaults& faults);

  /// The replication broker (valid after Start()); bootstrap attaches new
  /// replicas here.
  mw::Broker* broker() { return broker_.get(); }

  /// Attaches the wire endpoint to the broker (once; later calls no-op):
  /// catalog snapshot for remote handshakes, retention floor at the
  /// publisher's current position (LSNs shipped before the endpoint existed
  /// never reached its retention — resumes below the floor must bootstrap).
  /// Call after Start(). `options.topic` is forced to the publisher's.
  /// Socketpair deployments (tests, benches, the explorer's wire mode) then
  /// feed connections through net_endpoint()->ServeSocket().
  Status AttachWireEndpoint(net::EndpointOptions options = {});

  /// AttachWireEndpoint() + TCP listener on 127.0.0.1:`port` (0 =
  /// ephemeral; see net_endpoint()->port()). Remote replica processes
  /// connect here.
  Status ServeReplication(uint16_t port);

  /// The wire endpoint (null until AttachWireEndpoint/ServeReplication).
  net::NetEndpoint* net_endpoint() { return net_endpoint_.get(); }

  /// Topic update transactions are published on.
  const std::string& topic() const { return options_.publisher.topic; }

  /// Read-only transaction on the replica, interleaved with replication via
  /// the TM (sequence-consistent reads). Falls back to a direct read when
  /// running the serial baseline.
  Result<std::vector<rel::Row>> QueryReplica(const rel::SelectStatement& stmt);

  /// Runs `body` as ONE interleaved read-only transaction: all its reads see
  /// the replica state of a single sequence point (serializable against the
  /// replication stream). The body receives the buffered store view and a
  /// ReplicaReader bound to the catalog; return non-OK to signal failure.
  /// Under the serial baseline the body runs directly against the cluster
  /// (the subscriber thread is the only writer, but reads are then only
  /// key-atomic, not transactional).
  Status RunReadOnlyTransaction(
      const std::function<Status(kv::KvStore*, const qt::ReplicaReader&)>&
          body);

  /// Non-transactional read straight against the cluster (memcached-style
  /// access; may observe mid-replay state of multi-op transactions only
  /// through key-level atomicity — exactly the paper's §3.1 model).
  Result<std::vector<rel::Row>> QueryReplicaNonTransactional(
      const rel::SelectStatement& stmt);

  /// TM statistics (zeros under the serial baseline).
  core::TmStats tm_stats() const;

  /// The deployment's metrics registry: every layer (database, log, broker,
  /// publisher, subscriber, TM / serial applier, KV nodes, replica reader)
  /// publishes its instruments here. Snapshot + export via obs/exporters.h.
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Replication lag distribution in microseconds (empty unless
  /// options.measure_lag).
  const Histogram& lag_histogram() const { return lag_histogram_; }

  /// The deployment tracer (null unless options.trace.sample_every > 0).
  /// Dump() / Exemplars() read the flight recorder; feed the result to
  /// trace/export.h for Chrome-trace JSON or a text timeline.
  trace::Tracer* tracer() { return tracer_.get(); }

  /// The SLO watchdog (null unless options.slo.enabled).
  trace::SloWatchdog* slo() { return slo_.get(); }

  /// Highest LSN applied on the replica.
  uint64_t replica_lsn() const;

  /// Audits the replica against the database (row objects, hash postings,
  /// B-link indexes, stray objects). Quiesce first (SyncToLatest) for a
  /// meaningful answer.
  Result<qt::ConsistencyReport> AuditReplica();

  /// Truncates the database's transaction log up to what the replica has
  /// durably applied (shipped-and-completed LSN). Returns the truncation
  /// point. Safe at any time: the publisher never re-reads below its shipped
  /// cursor, and entries above the returned LSN are retained.
  uint64_t TruncateReplicatedLog();

  const qt::QueryTranslator& translator() const { return *translator_; }
  const TxRepOptions& options() const { return options_; }

 private:
  struct LagProbe {
    std::shared_ptr<core::Transaction> handle;  // Null under serial applier.
    int64_t commit_micros = 0;
  };

  Status ApplySink(rel::LogTransaction txn);
  void LagLoop();

  /// Declared first so it is destroyed last: every component below holds
  /// instrument pointers into it.
  // analyze: lock-free(MetricsRegistry is internally synchronized)
  obs::MetricsRegistry registry_;

  // analyze: lock-free(set in ctor, immutable afterwards)
  TxRepOptions options_;

  /// Declared before the pipeline components (destroyed after them): the
  /// log, publisher, subscriber and appliers all record spans into it. The
  /// watchdog thread is stopped explicitly in the destructor before the
  /// appliers it probes go away.
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<trace::Tracer> tracer_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<trace::SloWatchdog> slo_;

  // analyze: lock-free(Database owns its own mutex)
  rel::Database db_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<kv::KvCluster> cluster_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<qt::QueryTranslator> translator_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<qt::ReplicaReader> reader_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<core::TransactionManager> tm_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<core::SerialApplier> serial_;
  /// Declared before broker_ (so destroyed after it): the endpoint's fanout
  /// stays attached for the broker's lifetime, and the broker's delivery
  /// thread must be gone before the endpoint it calls into is.
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<net::NetEndpoint> net_endpoint_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<mw::Broker> broker_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<mw::PublisherAgent> publisher_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<mw::SubscriberAgent> subscriber_;

  // analyze: lock-free(Histogram is internally synchronized)
  Histogram lag_histogram_;
  // analyze: lock-free(BlockingQueue is internally synchronized)
  BlockingQueue<LagProbe> lag_queue_;
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread lag_thread_;

  /// Serializes serial-path applies against checkpointing: the subscriber
  /// sink holds it shared per transaction, Checkpoint() exclusively (the TM
  /// path has its own quiescent barrier instead).
  check::SharedMutex apply_gate_{"txrep.apply_gate"};
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<recov::CheckpointWriter> checkpoint_writer_;

  // analyze: lock-free(mutated only in Start/Checkpoint on the control thread)
  uint64_t snapshot_lsn_ = 0;  // Transactions <= this came via the snapshot.
  // analyze: lock-free(mutated only in Start/Stop on the control thread)
  bool started_ = false;
  // analyze: lock-free(set once in Start before workers exist)
  bool resumed_from_checkpoint_ = false;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_readonly_latency_ = nullptr;

  /// Declared last so it stops before anything it samples is destroyed.
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<obs::PeriodicReporter> reporter_;
};

}  // namespace txrep

#endif  // TXREP_TXREP_SYSTEM_H_
