#ifndef TXREP_TXREP_REMOTE_REPLICA_H_
#define TXREP_TXREP_REMOTE_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>

#include "blink/blink_tree.h"
#include "common/result.h"
#include "common/status.h"
#include "core/serial_applier.h"
#include "kv/kv_cluster.h"
#include "mw/subscriber.h"
#include "net/subscription.h"
#include "obs/metrics.h"
#include "qt/query_translator.h"
#include "rel/schema.h"

namespace txrep {

/// Configuration of a replica process fed over the wire.
struct RemoteReplicaOptions {
  /// Where the primary's NetEndpoint listens. Ignored when
  /// `socket_factory` is set (tests dial through socketpairs).
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Overrides host/port dialing when set.
  net::NetSubscription::SocketFactory socket_factory;

  /// Wire subscription knobs (topic, resume LSN, credits, reconnect).
  net::NetSubscriptionOptions subscription;

  /// The replica's own key-value cluster and range-index trees.
  kv::KvClusterOptions cluster;
  blink::BlinkTreeOptions blink;
};

/// A replica deployment living in its own process: dials the primary's
/// NetEndpoint, receives the catalog snapshot in the handshake, rebuilds the
/// relational layout locally (QueryTranslator over its own KvCluster) and
/// replays the replicated log through a SerialApplier — the bottom half of
/// Fig. 3 with the broker hop replaced by the wire (DESIGN.md §13).
///
/// Resume contract: a fresh replica (resume_after_lsn = 0) can only attach
/// to an endpoint whose retention still reaches LSN 1 — i.e. a primary that
/// started with an empty snapshot or began serving before traffic. Otherwise
/// the subscription is rejected with "bootstrap required" and Start() fails;
/// installing a checkpoint first and resuming from its epoch is the
/// recovery-path answer (PR 3 machinery), not re-copying over the wire.
class RemoteReplica {
 public:
  explicit RemoteReplica(RemoteReplicaOptions options);
  ~RemoteReplica();

  RemoteReplica(const RemoteReplica&) = delete;
  RemoteReplica& operator=(const RemoteReplica&) = delete;

  /// Dials, completes the handshake, decodes the catalog and starts the
  /// apply pipeline. Blocks until the subscription is live (or failed).
  Status Start();

  /// Blocks until every transaction with lsn <= `lsn` is applied locally.
  /// False when the pipeline stopped first (see health()).
  bool WaitForLsn(uint64_t lsn);

  /// Highest LSN applied locally.
  uint64_t applied_lsn() const;

  /// First failure of the wire subscription or the apply sink (OK while
  /// healthy; transient disconnects auto-reconnect and stay OK).
  Status health() const;

  /// Orderly stop of the apply pipeline and the wire subscription.
  void Stop();

  /// The replica store (valid after Start()).
  kv::KvCluster& cluster() { return *cluster_; }

  /// Catalog decoded from the handshake (valid after Start()).
  const rel::Catalog& catalog() const { return catalog_; }

  const qt::QueryTranslator& translator() const { return *translator_; }

  /// The wire subscription (valid after Start(); InjectDisconnect for
  /// kill-and-reconnect tests).
  net::NetSubscription* subscription() { return subscription_.get(); }

  obs::MetricsRegistry& metrics() { return registry_; }

 private:
  /// Declared first so it is destroyed last (instrument pointers).
  // analyze: lock-free(MetricsRegistry is internally synchronized)
  obs::MetricsRegistry registry_;

  // analyze: lock-free(set in ctor, immutable afterwards)
  RemoteReplicaOptions options_;

  // analyze: lock-free(set once in Start before the apply thread consumes it)
  rel::Catalog catalog_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<kv::KvCluster> cluster_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<qt::QueryTranslator> translator_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<core::SerialApplier> serial_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<net::NetSubscription> subscription_;
  // analyze: lock-free(wired before worker threads start; teardown joins first)
  std::unique_ptr<mw::SubscriberAgent> agent_;

  // analyze: lock-free(mutated only in Start/Stop on the control thread)
  bool started_ = false;
};

}  // namespace txrep

#endif  // TXREP_TXREP_REMOTE_REPLICA_H_
