"""libclang backend: the same micro-AST, typed by the real compiler.

When `clang.cindex` is importable (python3-clang + libclang installed), this
backend replaces the internal structural parser's declared-type guesses with
clang's resolved type spellings: class members, method return types, and
function signatures come from the AST; function *bodies* still flow through
the shared token-level scope analysis (body.py), so the rule engine is
identical across backends and the fixture tests pin both to the same
diagnostic sets.

No clang plugin is built and no compiler is invoked; parsing happens
in-process through the stable libclang C API.
"""

from __future__ import annotations

import os
from typing import List, Optional

from .lexer import lex_file
from .model import (ClassDecl, FunctionDef, MemberDecl, MethodDecl,
                    TranslationUnit, VarDecl, normalize_type)

_AVAILABLE: Optional[bool] = None


def available() -> bool:
    """True when clang.cindex imports and libclang actually loads."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from clang import cindex
            cindex.Index.create()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_DEFAULT_ARGS = ["-x", "c++", "-std=c++20"]


def parse_file(path: str, rel_path: str,
               extra_args: Optional[List[str]] = None) -> TranslationUnit:
    from clang import cindex

    lexed = lex_file(path)
    tu_model = TranslationUnit(path=rel_path, lexed=lexed)

    src_root = _src_root(path)
    args = list(_DEFAULT_ARGS)
    if src_root:
        args.append(f"-I{src_root}")
    if extra_args:
        args.extend(extra_args)

    index = cindex.Index.create()
    ctu = index.parse(path, args=args,
                      options=cindex.TranslationUnit.PARSE_INCOMPLETE)

    def in_main_file(cursor) -> bool:
        loc = cursor.location
        return loc.file is not None and \
            os.path.realpath(loc.file.name) == os.path.realpath(path)

    def qual_class_name(cursor) -> str:
        parts = []
        p = cursor
        while p is not None and p.kind in (
                cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL):
            parts.insert(0, p.spelling)
            p = p.semantic_parent
        return "::".join(parts)

    def field_annotations(cursor) -> List[str]:
        # The TXREP_* macros expand to clang attributes; the spelling of the
        # attribute cursors is implementation-shy, so read the raw tokens of
        # the declaration extent and look for the macro names.
        names = []
        try:
            for tok in cursor.get_tokens():
                if tok.spelling in ("TXREP_GUARDED_BY", "TXREP_PT_GUARDED_BY",
                                    "guarded_by", "pt_guarded_by"):
                    names.append("TXREP_GUARDED_BY"
                                 if "pt_" not in tok.spelling.lower()
                                 or tok.spelling == "TXREP_GUARDED_BY"
                                 else "TXREP_PT_GUARDED_BY")
        except Exception:
            pass
        return names

    def visit(cursor, class_stack: List[ClassDecl]):
        for child in cursor.get_children():
            kind = child.kind
            if kind in (cindex.CursorKind.NAMESPACE,
                        cindex.CursorKind.UNEXPOSED_DECL,
                        cindex.CursorKind.LINKAGE_SPEC):
                visit(child, class_stack)
                continue
            if not in_main_file(child):
                continue
            if kind in (cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL) and \
                    child.is_definition():
                cls = ClassDecl(name=qual_class_name(child),
                                line=child.location.line)
                tu_model.classes.append(cls)
                class_stack.append(cls)
                visit(child, class_stack)
                class_stack.pop()
                continue
            if kind == cindex.CursorKind.FIELD_DECL and class_stack:
                t = child.type
                class_stack[-1].members.append(MemberDecl(
                    name=child.spelling,
                    type_text=normalize_type(t.spelling),
                    line=child.location.line,
                    annotations=field_annotations(child),
                    is_static=False,
                    is_const=t.is_const_qualified()))
                continue
            if kind == cindex.CursorKind.VAR_DECL and class_stack:
                class_stack[-1].members.append(MemberDecl(
                    name=child.spelling,
                    type_text=normalize_type(child.type.spelling),
                    line=child.location.line, is_static=True))
                continue
            if kind in (cindex.CursorKind.CXX_METHOD,
                        cindex.CursorKind.FUNCTION_DECL,
                        cindex.CursorKind.CONSTRUCTOR,
                        cindex.CursorKind.DESTRUCTOR,
                        cindex.CursorKind.FUNCTION_TEMPLATE):
                ret = ""
                if kind not in (cindex.CursorKind.CONSTRUCTOR,
                                cindex.CursorKind.DESTRUCTOR):
                    ret = normalize_type(child.result_type.spelling)
                owner = ""
                sp = child.semantic_parent
                if sp is not None and sp.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    owner = qual_class_name(sp)
                if class_stack and ret:
                    class_stack[-1].methods.append(MethodDecl(
                        child.spelling, ret, child.location.line))
                if child.is_definition():
                    fn = _make_function(child, owner, ret, lexed)
                    if fn is not None:
                        tu_model.functions.append(fn)
                continue

    def _make_function(cursor, owner: str, ret: str, lexed_file):
        from clang import cindex
        body_cursor = None
        params: List[VarDecl] = []
        for ch in cursor.get_children():
            if ch.kind == cindex.CursorKind.PARM_DECL:
                params.append(VarDecl(
                    name=ch.spelling or "",
                    type_text=normalize_type(ch.type.spelling),
                    line=ch.location.line))
            elif ch.kind == cindex.CursorKind.COMPOUND_STMT:
                body_cursor = ch
        if body_cursor is None:
            return None
        start = body_cursor.extent.start.line
        end = body_cursor.extent.end.line
        body = [t for t in lexed_file.tokens
                if start <= t.line <= end and t.kind != "pp"]
        name = cursor.spelling
        qual = f"{owner}::{name}" if owner else name
        return FunctionDef(name=name, qual_name=qual, owner=owner,
                           return_type=ret, line=cursor.location.line,
                           params=[p for p in params if p.name], body=body)

    visit(ctu.cursor, [])
    return tu_model


def _src_root(path: str) -> Optional[str]:
    """Nearest ancestor directory named `src` (include root for the repo)."""
    d = os.path.dirname(os.path.realpath(path))
    while d and d != os.path.dirname(d):
        if os.path.basename(d) == "src":
            return d
        d = os.path.dirname(d)
    return None
