"""Project-wide type index: classes, members, and return types.

Built from every parsed translation unit (headers included) before rules run,
so that a rule analyzing kv/disk_node.cc can resolve `writes_` declared in
disk_node.h or the return type of `TxnBuffer::read_set()` declared in
core/txn_buffer.h.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .model import ClassDecl, TranslationUnit


class ProjectIndex:
    def __init__(self):
        self.classes: Dict[str, ClassDecl] = {}
        # method name -> set of return types across all classes (for
        # receiver-less resolution; only trusted when unambiguous).
        self._method_returns: Dict[str, Set[str]] = {}
        self._function_returns: Dict[str, str] = {}

    def add_tu(self, tu: TranslationUnit) -> None:
        for cls in tu.classes:
            # Short name and qualified name both resolve; redefinitions
            # (e.g. the same header parsed for .h and .cc) merge by richer.
            existing = self.classes.get(cls.name)
            if existing is None or len(cls.members) + len(cls.methods) > \
                    len(existing.members) + len(existing.methods):
                self.classes[cls.name] = cls
            for m in cls.methods:
                if m.return_type:
                    self._method_returns.setdefault(m.name, set()).add(
                        m.return_type)
        for fn in tu.functions:
            if fn.owner == "" and fn.return_type:
                self._function_returns.setdefault(fn.name, fn.return_type)
            if fn.return_type:
                self._method_returns.setdefault(fn.name, set()).add(
                    fn.return_type)

    def find_class(self, name: str) -> Optional[ClassDecl]:
        if not name:
            return None
        name = name.split("<")[0].strip()
        if name in self.classes:
            return self.classes[name]
        # Try the unqualified tail: `kv::DiskKvNode` -> `DiskKvNode`.
        tail = name.split("::")[-1]
        if tail in self.classes:
            return self.classes[tail]
        for k, v in self.classes.items():
            if k.endswith("::" + tail) or k == tail:
                return v
        return None

    def member_type(self, cls_name: str, member: str) -> Optional[str]:
        cls = self.find_class(cls_name)
        if not cls:
            return None
        for m in cls.members:
            if m.name == member:
                return m.type_text
        return None

    def member_decl(self, cls_name: str, member: str):
        cls = self.find_class(cls_name)
        if not cls:
            return None
        for m in cls.members:
            if m.name == member:
                return m
        return None

    def method_return(self, cls_name: str, method: str) -> Optional[str]:
        cls = self.find_class(cls_name)
        if cls:
            for m in cls.methods:
                if m.name == method:
                    return m.return_type or None
        return None

    def function_return(self, name: str) -> Optional[str]:
        return self._function_returns.get(name)

    def unambiguous_return(self, name: str) -> Optional[str]:
        """Return type of `name` if *every* known declaration of that name
        (any class, free functions) agrees. Used for receiver-less
        resolution in the status-discard rule."""
        types = set(self._method_returns.get(name, set()))
        free = self._function_returns.get(name)
        if free:
            types.add(free)
        if len(types) == 1:
            return next(iter(types))
        return None
