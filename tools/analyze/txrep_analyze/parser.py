"""Internal backend: build the micro-AST from the token stream alone.

This is a *structural* C++ parser, not a conforming one. It understands
exactly as much C++ as the rule families need — namespaces, class/struct
bodies with data members, member annotations (TXREP_GUARDED_BY et al.),
method declarations with return types, and function definitions with
balanced-brace bodies — and it is deliberately forgiving: anything it cannot
classify it skips without derailing the rest of the file. The libclang
backend (backend_clang.py) produces the same model with compiler-grade
fidelity when libclang is installed; fixture tests pin both to identical
diagnostics on the constructs the rules exercise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .lexer import ID, PP, PUNCT, LexedFile, Token, lex_file
from .model import (ClassDecl, FunctionDef, MemberDecl, MethodDecl,
                    TranslationUnit, VarDecl, normalize_type)

# Annotation macros that attach to member declarations.
MEMBER_ANNOTATIONS = {"TXREP_GUARDED_BY", "TXREP_PT_GUARDED_BY"}
# Macros that attach to function declarations; skipped when scanning heads.
_FUNC_ANNOTATIONS = {
    "TXREP_REQUIRES", "TXREP_REQUIRES_SHARED", "TXREP_ACQUIRE",
    "TXREP_ACQUIRE_SHARED", "TXREP_RELEASE", "TXREP_RELEASE_SHARED",
    "TXREP_TRY_ACQUIRE", "TXREP_EXCLUDES", "TXREP_ASSERT_CAPABILITY",
    "TXREP_RETURN_CAPABILITY", "TXREP_ACQUIRED_AFTER",
    "TXREP_ACQUIRED_BEFORE", "TXREP_NO_THREAD_SAFETY_ANALYSIS",
    "TXREP_CAPABILITY", "TXREP_SCOPED_CAPABILITY",
}
_SKIP_HEAD_KEYWORDS = {"using", "friend", "typedef", "static_assert"}
_BODY_INTRO = {")", "const", "override", "final", "noexcept", "&", "&&", ">",
               "mutable", "try", "else", "do"}


class _Cursor:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.i = 0

    def eof(self) -> bool:
        return self.i >= len(self.toks)

    def peek(self, k: int = 0) -> Optional[Token]:
        j = self.i + k
        return self.toks[j] if j < len(self.toks) else None


def skip_balanced(toks: List[Token], i: int, open_p: str, close_p: str) -> int:
    """`toks[i]` is `open_p`; returns index one past its matching `close_p`."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == open_p:
                depth += 1
            elif t.text == close_p:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def skip_template_args(toks: List[Token], i: int) -> int:
    """`toks[i]` is `<`; returns index one past the matching `>`.

    Heuristic angle matching: treats `<`/`>` as brackets but aborts (returning
    i+1) when it sees a token that cannot appear in a template-argument list,
    so comparison expressions do not swallow the rest of the file.
    """
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        t = toks[j]
        if t.kind == PUNCT:
            if t.text == "<":
                depth += 1
            elif t.text in (">", ">>"):
                depth -= 2 if t.text == ">>" else 1
                if depth <= 0:
                    return j + 1
            elif t.text in (";", "{", "}", "&&", "||"):
                return i + 1  # not a template-arg list
        j += 1
    return i + 1


def parse_file(path: str, rel_path: str) -> TranslationUnit:
    lexed = lex_file(path)
    tu = TranslationUnit(path=rel_path, lexed=lexed)
    toks = [t for t in lexed.tokens if t.kind != PP]
    _parse_decl_region(tu, toks, 0, len(toks), owner="")
    return tu


def _parse_decl_region(tu: TranslationUnit, toks: List[Token], i: int,
                       end: int, owner: str) -> None:
    """Parses a namespace/file-scope region in toks[i:end]."""
    while i < end:
        i = _parse_one_decl(tu, toks, i, end, owner)


def _parse_one_decl(tu: TranslationUnit, toks: List[Token], i: int, end: int,
                    owner: str) -> int:
    t = toks[i]

    if t.kind == PUNCT and t.text == ";":
        return i + 1
    if t.kind == PUNCT and t.text == "}":
        return i + 1

    if t.kind == ID and t.text == "template":
        nxt = toks[i + 1] if i + 1 < end else None
        if nxt and nxt.text == "<":
            i = skip_template_args(toks, i + 1)
            return _parse_one_decl(tu, toks, i, end, owner)
        return i + 1

    if t.kind == ID and t.text == "namespace":
        j = i + 1
        while j < end and not (toks[j].kind == PUNCT and toks[j].text in ("{", ";", "=")):
            j += 1
        if j < end and toks[j].text == "{":
            close = skip_balanced(toks, j, "{", "}")
            _parse_decl_region(tu, toks, j + 1, close - 1, owner)
            return close
        return j + 1

    if t.kind == ID and t.text in ("class", "struct") and not _is_enum_class(toks, i):
        return _parse_class(tu, toks, i, end, owner)

    if t.kind == ID and t.text == "enum":
        return _skip_to_block_or_semi(toks, i, end)

    if t.kind == ID and t.text == "extern":
        return i + 1

    # Everything else at this scope: either a function definition (head ends
    # with a body '{') or a simple declaration (ends with ';').
    head, j, terminator = _collect_head(toks, i, end)
    if terminator == "{":
        close = skip_balanced(toks, j, "{", "}")
        fn = _head_to_function(head, toks[j:close], owner)
        if fn is not None:
            tu.functions.append(fn)
        return close
    return j + 1 if terminator == ";" else j


def _is_enum_class(toks: List[Token], i: int) -> bool:
    return i > 0 and toks[i - 1].kind == ID and toks[i - 1].text == "enum"


def _skip_to_block_or_semi(toks: List[Token], i: int, end: int) -> int:
    while i < end:
        t = toks[i]
        if t.kind == PUNCT and t.text == "{":
            i = skip_balanced(toks, i, "{", "}")
            # trailing `;` (and possibly a variable name) handled by caller
            return i
        if t.kind == PUNCT and t.text == ";":
            return i + 1
        i += 1
    return end


def _collect_head(toks: List[Token], i: int, end: int) -> Tuple[List[Token], int, str]:
    """Collects a declaration head up to a top-level `;` or a body `{`.

    Brace initializers (`x_{0}`, `= {...}`, `Type{...}` temporaries) are
    consumed into the head; only a `{` that plausibly opens a function body
    terminates with "{".
    """
    head: List[Token] = []
    while i < end:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == ";":
                return head, i, ";"
            if t.text == "(":
                close = skip_balanced(toks, i, "(", ")")
                head.extend(toks[i:close])
                i = close
                continue
            if t.text == "[":
                close = skip_balanced(toks, i, "[", "]")
                head.extend(toks[i:close])
                i = close
                continue
            if t.text == "{":
                prev = head[-1] if head else None
                if prev is not None and (prev.kind != PUNCT or prev.text not in
                                         ("=", ",", "(", "<")) and \
                        (prev.kind != ID or prev.text in _BODY_INTRO or
                         _looks_like_macro(prev.text) or
                         _head_is_definitely_function(head)):
                    return head, i, "{"
                # Brace initializer / aggregate init: swallow it.
                close = skip_balanced(toks, i, "{", "}")
                head.extend(toks[i:close])
                i = close
                continue
            if t.text == "}":
                return head, i, "}"
        head.append(t)
        i += 1
    return head, i, ""


def _looks_like_macro(text: str) -> bool:
    return text.startswith("TXREP_") or (text.isupper() and "_" in text)


def _head_is_definitely_function(head: List[Token]) -> bool:
    """True when the head contains a parameter list `(...)` directly after an
    identifier and no `=` at top level (so `Type name{init};` stays a var)."""
    saw_call = False
    for k, t in enumerate(head):
        if t.kind == PUNCT and t.text == "=":
            return False
        if t.kind == PUNCT and t.text == "(" and k > 0 and head[k - 1].kind == ID:
            saw_call = True
    return saw_call


def _parse_class(tu: TranslationUnit, toks: List[Token], i: int, end: int,
                 owner: str) -> int:
    """toks[i] is `class` or `struct`."""
    j = i + 1
    name = ""
    # Scan to the class body '{', a ';' (fwd decl), or giving up.
    while j < end:
        t = toks[j]
        if t.kind == PUNCT and t.text == ";":
            return j + 1
        if t.kind == PUNCT and t.text == "{":
            break
        if t.kind == PUNCT and t.text == ":":  # base clause: name is fixed
            break
        if t.kind == ID and not _looks_like_macro(t.text) and t.text not in (
                "final", "alignas"):
            name = t.text
        if t.kind == PUNCT and t.text == "(":  # macro args e.g. TXREP_CAPABILITY("x")
            j = skip_balanced(toks, j, "(", ")")
            continue
        j += 1
    # Move to the '{'.
    while j < end and not (toks[j].kind == PUNCT and toks[j].text == "{"):
        if toks[j].kind == PUNCT and toks[j].text == ";":
            return j + 1
        j += 1
    if j >= end:
        return end
    close = skip_balanced(toks, j, "{", "}")
    qual = f"{owner}::{name}" if owner and name else name
    cls = ClassDecl(name=qual or "<anon>", line=toks[i].line)
    tu.classes.append(cls)
    _parse_class_body(tu, cls, toks, j + 1, close - 1)
    return close


def _parse_class_body(tu: TranslationUnit, cls: ClassDecl, toks: List[Token],
                      i: int, end: int) -> None:
    while i < end:
        t = toks[i]
        if t.kind == ID and t.text in ("public", "private", "protected") and \
                i + 1 < end and toks[i + 1].text == ":":
            i += 2
            continue
        if t.kind == PUNCT and t.text == ";":
            i += 1
            continue
        if t.kind == ID and t.text == "template":
            nxt = toks[i + 1] if i + 1 < end else None
            if nxt and nxt.text == "<":
                i = skip_template_args(toks, i + 1)
                continue
            i += 1
            continue
        if t.kind == ID and t.text in ("class", "struct") and not _is_enum_class(toks, i):
            i = _parse_class(tu, toks, i, end, owner=cls.name)
            continue
        if t.kind == ID and (t.text in _SKIP_HEAD_KEYWORDS or t.text == "enum"):
            i = _skip_to_block_or_semi(toks, i, end)
            continue

        head, j, terminator = _collect_head(toks, i, end)
        if terminator == "{":
            close = skip_balanced(toks, j, "{", "}")
            fn = _head_to_function(head, toks[j:close], owner=cls.name)
            if fn is not None:
                tu.functions.append(fn)
                cls.methods.append(MethodDecl(fn.name, fn.return_type, fn.line))
            i = close
            continue
        if terminator in (";", ""):
            _classify_member_head(cls, head)
            i = j + 1 if terminator == ";" else j
            continue
        i = j + 1  # stray '}' — let the caller's bounds end things


def _strip_annotations(head: List[Token]) -> Tuple[List[Token], List[str]]:
    """Removes TXREP_* annotation macros (with their arg lists) from a head."""
    out: List[Token] = []
    found: List[str] = []
    k = 0
    while k < len(head):
        t = head[k]
        if t.kind == ID and (t.text in MEMBER_ANNOTATIONS or
                             t.text in _FUNC_ANNOTATIONS):
            if t.text in MEMBER_ANNOTATIONS:
                found.append(t.text)
            k += 1
            if k < len(head) and head[k].kind == PUNCT and head[k].text == "(":
                k = skip_balanced(head, k, "(", ")")
            continue
        out.append(t)
        k += 1
    return out, found


def _classify_member_head(cls: ClassDecl, head: List[Token]) -> None:
    """A class-scope head ending in ';': method decl or data member."""
    if not head:
        return
    head, annotations = _strip_annotations(head)
    if not head:
        return
    first = head[0]
    if first.kind == ID and first.text in _SKIP_HEAD_KEYWORDS:
        return
    if any(t.kind == ID and t.text == "operator" for t in head):
        return  # operator declarations are never data members

    # Method declaration: identifier directly followed by a top-level '('
    # whose preceding tokens form the return type.
    depth = 0
    for k, t in enumerate(head):
        if t.kind == PUNCT and t.text == "<":
            depth += 1
        elif t.kind == PUNCT and t.text in (">", ">>"):
            depth -= 2 if t.text == ">>" else 1
        elif depth <= 0 and t.kind == PUNCT and t.text == "(" and k > 0 and \
                head[k - 1].kind == ID:
            name_tok = head[k - 1]
            ret = normalize_type(_tokens_text(head[:k - 1]))
            if name_tok.text == "operator" or _looks_like_macro(name_tok.text):
                return
            # `= 0`, `= default` etc. after ')' are irrelevant here. But a
            # head like `int x (5);`-style member is vanishingly rare — treat
            # every id( at class scope as a method.
            cls.methods.append(MethodDecl(name_tok.text, ret, name_tok.line))
            return
        elif depth <= 0 and t.kind == PUNCT and t.text == "=":
            break  # initialized data member

    # Data member: name is the last identifier before '=' / brace-init / end.
    is_static = any(t.kind == ID and t.text == "static" for t in head)
    cut = len(head)
    for k, t in enumerate(head):
        if t.kind == PUNCT and t.text == "=":
            cut = k
            break
    # Trailing brace initializer was swallowed into the head; drop it.
    while cut > 0 and head[cut - 1].kind == PUNCT and head[cut - 1].text == "}":
        open_k = _matching_open(head, cut - 1)
        if open_k is None:
            break
        cut = open_k
    name_k = None
    for k in range(cut - 1, -1, -1):
        if head[k].kind == ID and head[k].text not in ("const", "constexpr",
                                                       "mutable", "static"):
            name_k = k
            break
    if name_k is None or name_k == 0:
        return
    type_toks = head[:name_k]
    type_text = normalize_type(_tokens_text(type_toks))
    if not type_text:
        return
    raw_type = _tokens_text(type_toks)
    is_const = ("constexpr" in raw_type or
                (" const" in f" {raw_type}" and "*" not in raw_type) or
                raw_type.rstrip().endswith("const"))
    cls.members.append(MemberDecl(
        name=head[name_k].text, type_text=type_text, line=head[name_k].line,
        annotations=annotations, is_static=is_static, is_const=is_const))


def _matching_open(head: List[Token], close_k: int) -> Optional[int]:
    depth = 0
    for k in range(close_k, -1, -1):
        t = head[k]
        if t.kind == PUNCT and t.text == "}":
            depth += 1
        elif t.kind == PUNCT and t.text == "{":
            depth -= 1
            if depth == 0:
                return k
    return None


def _head_to_function(head: List[Token], body: List[Token],
                      owner: str) -> Optional[FunctionDef]:
    """Builds a FunctionDef from a head that ended with a body '{'."""
    head, _ = _strip_annotations(head)
    if not head:
        return None
    # Find the parameter list: the first top-level '(' preceded by an
    # identifier (or operator). Tokens before it = return type + name.
    depth = 0
    param_open = None
    for k, t in enumerate(head):
        if t.kind == PUNCT and t.text == "<":
            depth += 1
        elif t.kind == PUNCT and t.text in (">", ">>"):
            depth -= 2 if t.text == ">>" else 1
            depth = max(depth, 0)
        elif depth == 0 and t.kind == PUNCT and t.text == "(" and k > 0:
            prev = head[k - 1]
            if prev.kind == ID and not _looks_like_macro(prev.text):
                param_open = k
                break
    if param_open is None:
        return None
    name_tok = head[param_open - 1]
    param_close = skip_balanced(head, param_open, "(", ")")
    params = _parse_params(head[param_open + 1:param_close - 1])

    # Qualified names: A::B(...) definitions out of line.
    name = name_tok.text
    qual_prefix = []
    k = param_open - 2
    while k >= 1 and head[k].kind == PUNCT and head[k].text == "::" and \
            head[k - 1].kind == ID:
        qual_prefix.insert(0, head[k - 1].text)
        k -= 2
    ret = normalize_type(_tokens_text(head[:k + 1]))
    fn_owner = "::".join(qual_prefix) if qual_prefix else owner
    if name == "operator":
        return None
    qual = f"{fn_owner}::{name}" if fn_owner else name
    return FunctionDef(name=name, qual_name=qual, owner=fn_owner,
                       return_type=ret, line=name_tok.line, params=params,
                       body=body)


def _parse_params(toks: List[Token]) -> List[VarDecl]:
    params: List[VarDecl] = []
    if not toks:
        return params
    # Split on top-level commas.
    depth = 0
    start = 0
    groups: List[List[Token]] = []
    for k, t in enumerate(toks):
        if t.kind == PUNCT and t.text in ("<", "(", "[", "{"):
            depth += 1
        elif t.kind == PUNCT and t.text in (">", ")", "]", "}"):
            depth -= 1
        elif t.kind == PUNCT and t.text == ">>":
            depth -= 2
        elif t.kind == PUNCT and t.text == "," and depth <= 0:
            groups.append(toks[start:k])
            start = k + 1
    groups.append(toks[start:])
    for g in groups:
        # Drop default arguments.
        for k, t in enumerate(g):
            if t.kind == PUNCT and t.text == "=":
                g = g[:k]
                break
        if not g:
            continue
        name_k = None
        for k in range(len(g) - 1, -1, -1):
            if g[k].kind == ID and g[k].text not in ("const", "constexpr"):
                name_k = k
                break
        if name_k is None or name_k == 0:
            continue  # unnamed or type-only param
        type_text = normalize_type(_tokens_text(g[:name_k]))
        if type_text:
            params.append(VarDecl(name=g[name_k].text, type_text=type_text,
                                  line=g[name_k].line))
    return params


def _tokens_text(toks: List[Token]) -> str:
    return " ".join(t.text for t in toks)
