"""Statement/scope analysis over function-body token slices.

Shared by the rule families: builds a scope tree from a FunctionDef's body
tokens, splits statements, extracts local declarations, recognizes range-for
loops and call expressions, and resolves the declared type of simple
expressions against locals, parameters, class members, and the project index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .lexer import ID, PUNCT, STR, Token
from .model import FunctionDef, VarDecl, normalize_type
from .parser import skip_balanced, skip_template_args


@dataclass
class Statement:
    tokens: List[Token]

    @property
    def line(self) -> int:
        return self.tokens[0].line if self.tokens else 0


@dataclass
class Scope:
    """One brace scope. `header` holds the for/if/while control clause that
    introduced it (empty for plain blocks and the function's own body)."""
    header: List[Token] = field(default_factory=list)
    statements: List["StmtOrScope"] = field(default_factory=list)
    line: int = 0


StmtOrScope = object  # Statement | Scope


def build_scope(body: List[Token]) -> Scope:
    """`body` includes the outer braces."""
    inner = body[1:-1] if body and body[0].text == "{" else body
    root = Scope(line=body[0].line if body else 0)
    _fill_scope(root, inner, 0, len(inner))
    return root


def _fill_scope(scope: Scope, toks: List[Token], i: int, end: int) -> None:
    stmt: List[Token] = []

    def flush():
        nonlocal stmt
        if stmt:
            scope.statements.append(Statement(tokens=stmt))
            stmt = []

    while i < end:
        t = toks[i]
        if t.kind == PUNCT and t.text == ";":
            stmt.append(t)
            flush()
            i += 1
            continue
        if t.kind == PUNCT and t.text == "(":
            close = skip_balanced(toks, i, "(", ")")
            stmt.extend(toks[i:close])
            i = close
            continue
        if t.kind == PUNCT and t.text == "{":
            close = skip_balanced(toks, i, "{", "}")
            # A `{` right after `=`, `,`, `(`, `return`, or an identifier that
            # is part of an expression is an initializer — keep it in the
            # statement. Otherwise it opens a nested scope whose header is
            # the statement collected so far (if it is a control clause).
            prev = stmt[-1] if stmt else None
            is_init = prev is not None and (
                (prev.kind == PUNCT and prev.text in ("=", ",", "(", "<")) or
                (prev.kind == ID and prev.text == "return"))
            if is_init:
                stmt.extend(toks[i:close])
                i = close
                continue
            child = Scope(header=list(stmt), line=toks[i].line)
            _fill_scope(child, toks, i + 1, close - 1)
            scope.statements.append(child)
            stmt = []
            i = close
            continue
        stmt.append(t)
        i += 1
    flush()


def iter_scopes(scope: Scope):
    """Yields every scope in the tree, root first."""
    yield scope
    for s in scope.statements:
        if isinstance(s, Scope):
            yield from iter_scopes(s)


_TYPE_ONLY = {"const", "constexpr", "auto", "unsigned", "signed", "long",
              "short", "int", "char", "bool", "float", "double", "void",
              "size_t", "int64_t", "uint64_t", "int32_t", "uint32_t"}
_NOT_DECL_STARTS = {"return", "if", "for", "while", "switch", "do", "else",
                    "delete", "new", "throw", "break", "continue", "goto",
                    "case", "default", "co_return", "co_await", "this",
                    "sizeof", "static_cast", "dynamic_cast", "const_cast",
                    "reinterpret_cast", "assert"}


def parse_local_decl(stmt: Statement) -> Optional[VarDecl]:
    """Recognizes `Type name;`, `Type name = init;`, `Type name(args);`,
    `Type name{init};` and returns a VarDecl, else None."""
    toks = [t for t in stmt.tokens if not (t.kind == PUNCT and t.text == ";")]
    if len(toks) < 2:
        return None
    first = toks[0]
    if first.kind != ID or first.text in _NOT_DECL_STARTS:
        return None
    if first.text.startswith("TXREP_"):
        return None

    # Find the end of the "type + name" prefix: the first top-level `=`, `(`,
    # or `{` (initializer), or the whole statement.
    depth = 0
    cut = len(toks)
    init_start = None
    for k, t in enumerate(toks):
        if t.kind == PUNCT and t.text == "<":
            # Could be a template-arg list or a comparison; try to skip.
            j = skip_template_args(toks, k)
            if j > k + 1:
                depth += 0  # consumed below by index jump trick
        if t.kind == PUNCT and t.text in ("=", "(", "{") and depth == 0:
            # `==` never appears as `=` token; `(` after an identifier at
            # position>0 is a ctor call or function call.
            cut = k
            init_start = k
            break
    prefix = toks[:cut]
    # Re-scan prefix treating <...> as part of the type.
    k = 0
    flat: List[Token] = []
    while k < len(prefix):
        t = prefix[k]
        if t.kind == PUNCT and t.text == "<":
            j = skip_template_args(prefix, k)
            if j > k + 1:
                flat.extend(prefix[k:j])
                k = j
                continue
            return None  # comparison expression, not a decl
        flat.append(t)
        k += 1
    prefix = flat
    if len(prefix) < 2:
        return None
    name_tok = prefix[-1]
    if name_tok.kind != ID or name_tok.text in _TYPE_ONLY:
        return None
    type_toks = prefix[:-1]
    # The type must end in an identifier, `>`, `*`, `&`, or `::` chain —
    # expression statements like `a.b(c)` have `.` before the "(", which
    # normalize_type keeps and we reject here.
    texts = [t.text for t in type_toks]
    if any(t in (".", "->", "+", "-", "/", "==", "!=", "||", "&&", "!", "[",
                 "]", "return") for t in texts):
        return None
    if not any(t.kind == ID for t in type_toks):
        return None
    init_text = ""
    if init_start is not None:
        init_text = " ".join(t.text for t in toks[init_start:])
    return VarDecl(name=name_tok.text,
                   type_text=normalize_type(" ".join(texts)),
                   line=name_tok.line, init_text=init_text)


@dataclass
class CallSite:
    callee: str              # method/function name
    receiver: List[Token]    # tokens of the receiver chain ("" for free calls)
    line: int
    args_span: Tuple[int, int]  # token indices into the scanned slice


def find_calls(toks: List[Token]) -> List[CallSite]:
    """All `name(...)` call expressions in a token slice, including the
    receiver chain tokens before a `.` / `->` / `::`."""
    calls: List[CallSite] = []
    for k, t in enumerate(toks):
        if t.kind != PUNCT or t.text != "(" or k == 0:
            continue
        name_tok = toks[k - 1]
        if name_tok.kind != ID:
            continue
        if name_tok.text in _NOT_DECL_STARTS or name_tok.text in (
                "if", "for", "while", "switch", "catch"):
            continue
        # Receiver chain: walk back over `.`/`->`/`::` + id/)/] groups.
        r_end = k - 1
        j = r_end
        while j - 1 >= 0:
            sep = toks[j - 1]
            if sep.kind == PUNCT and sep.text in (".", "->", "::"):
                j -= 2 if j - 2 >= 0 else 1
                continue
            break
        receiver = toks[j:r_end] if j < r_end else []
        close = skip_balanced(toks, k, "(", ")")
        calls.append(CallSite(callee=name_tok.text, receiver=receiver,
                              line=name_tok.line, args_span=(k + 1, close - 1)))
    return calls


class TypeResolver:
    """Resolves the declared type of simple expressions inside a function."""

    def __init__(self, index, fn: FunctionDef, scope: Scope):
        self.index = index
        self.fn = fn
        # All local decls in the whole body (scope-blind: name collisions
        # across sibling scopes are rare in this codebase and harmless here).
        self.locals = {}
        # Range-for loop variables: name -> ranged-expression tokens, typed
        # lazily as the container's element type.
        self._range_vars = {}
        self._resolving = set()
        for s in iter_scopes(scope):
            for st in s.statements:
                if isinstance(st, Statement):
                    d = parse_local_decl(st)
                    if d:
                        self.locals.setdefault(d.name, d)
            d = range_for_decl(s)
            if d is not None:
                parts = range_for_parts(s)
                if parts is not None:
                    self._range_vars.setdefault(d.name, parts[1])
        for p in fn.params:
            self.locals.setdefault(p.name, p)

    def type_of_name(self, name: str) -> str:
        if name in self.locals:
            return strip_decoration(self.locals[name].type_text)
        if name in self._range_vars and name not in self._resolving:
            self._resolving.add(name)
            try:
                container = self.type_of_expr(self._range_vars[name])
            finally:
                self._resolving.discard(name)
            elem = element_type(container)
            if elem:
                return strip_decoration(elem)
        member = self.index.member_type(self.fn.owner, name)
        if member:
            return strip_decoration(member)
        return ""

    def type_of_expr(self, toks: List[Token]) -> str:
        """Declared type of `x`, `x.f()`, `x->f()`, `f()`, `x.m`, `*x`."""
        toks = [t for t in toks if not (t.kind == PUNCT and t.text == "*")]
        if not toks:
            return ""
        if len(toks) == 1 and toks[0].kind == ID:
            return self.type_of_name(toks[0].text)
        # tail call or member: resolve the base then follow one hop at a time.
        parts = _split_chain(toks)
        if not parts:
            return ""
        base = parts[0]
        if len(base) == 1 and base[0].kind == ID:
            cur = self.type_of_name(base[0].text)
            if not cur and len(parts) > 1:
                # Unqualified start — maybe a member fn call on *this.
                cur = self.fn.owner
        elif _is_call(base):
            cur = self.index.method_return(self.fn.owner, base[0].text) or \
                self.index.function_return(base[0].text)
        else:
            return ""
        for part in parts[1:]:
            if not cur:
                return ""
            cls = class_of(cur)
            if _is_call(part):
                cur = self.index.method_return(cls, part[0].text)
            elif len(part) >= 1 and part[0].kind == ID:
                cur = self.index.member_type(cls, part[0].text)
            else:
                return ""
            cur = strip_decoration(cur or "")
        return cur or ""


def _split_chain(toks: List[Token]) -> List[List[Token]]:
    """Splits `a.b().c` into [[a], [b, (, )], [c]]."""
    parts: List[List[Token]] = []
    cur: List[Token] = []
    k = 0
    while k < len(toks):
        t = toks[k]
        if t.kind == PUNCT and t.text in (".", "->"):
            if cur:
                parts.append(cur)
            cur = []
            k += 1
            continue
        if t.kind == PUNCT and t.text == "(":
            close = skip_balanced(toks, k, "(", ")")
            cur.append(t)
            cur.append(toks[close - 1] if close - 1 < len(toks) else t)
            k = close
            continue
        cur.append(t)
        k += 1
    if cur:
        parts.append(cur)
    return parts


def _is_call(part: List[Token]) -> bool:
    return len(part) >= 2 and part[0].kind == ID and part[1].text == "("


def strip_decoration(type_text: str) -> str:
    """Drops pointer stars from a normalized type for class lookups."""
    return type_text.replace("*", " ").strip()


def element_type(container_type: str) -> str:
    """Element type of a sequence container: `std::vector<Stripe>` -> Stripe.
    Associative containers return "" (their element is a pair; rules that
    care match on the container type itself)."""
    t = strip_decoration(container_type)
    for wrapper in ("std::vector<", "std::deque<", "std::list<",
                    "std::span<", "std::array<"):
        if t.startswith(wrapper) and t.endswith(">"):
            inner = t[len(wrapper):-1]
            # std::array<T, N>: drop the count.
            if wrapper == "std::array<" and "," in inner:
                inner = inner.split(",")[0]
            return inner.strip()
    return ""


def class_of(type_text: str) -> str:
    """`std::unique_ptr<kv::KvCluster>` -> `kv::KvCluster`; `kv::KvStore *`
    -> `kv::KvStore`; otherwise the outer type name."""
    t = strip_decoration(type_text)
    for wrapper in ("std::unique_ptr<", "std::shared_ptr<", "std::optional<"):
        if t.startswith(wrapper) and t.endswith(">"):
            t = t[len(wrapper):-1]
    return t.strip()


def range_for_decl(scope: Scope) -> Optional[VarDecl]:
    """If `scope.header` is a range-for, returns the loop variable's decl
    with type "" (unknown — comes from the ranged expression)."""
    h = scope.header
    if not (h and h[0].kind == ID and h[0].text == "for"):
        return None
    rng = range_for_parts(scope)
    if rng is None:
        return None
    decl_toks, _ = rng
    for k in range(len(decl_toks) - 1, -1, -1):
        if decl_toks[k].kind == ID and decl_toks[k].text not in ("const",
                                                                 "auto"):
            return VarDecl(name=decl_toks[k].text, type_text="",
                           line=decl_toks[k].line)
    return None


def range_for_parts(scope: Scope) -> Optional[Tuple[List[Token], List[Token]]]:
    """For a range-for header `for (decl : expr)`, returns (decl, expr)."""
    h = scope.header
    if not (h and h[0].kind == ID and h[0].text == "for"):
        return None
    return header_range_for_parts(h)


def statement_range_for(stmt: "Statement"):
    """For a braceless loop statement `for (decl : expr) body;`, returns
    (decl_tokens, expr_tokens, body_tokens), else None."""
    toks = stmt.tokens
    if not (toks and toks[0].kind == ID and toks[0].text == "for"):
        return None
    try:
        open_k = next(k for k, t in enumerate(toks) if t.text == "(")
    except StopIteration:
        return None
    close_k = skip_balanced(toks, open_k, "(", ")")
    parts = header_range_for_parts(toks[:close_k])
    if parts is None:
        return None
    return parts[0], parts[1], toks[close_k:]


def header_range_for_parts(h: List[Token]):
    """Splits `for ( decl : expr )` tokens into (decl, expr)."""
    # Header tokens include `for ( ... )`.
    try:
        open_k = next(k for k, t in enumerate(h) if t.text == "(")
    except StopIteration:
        return None
    close_k = skip_balanced(h, open_k, "(", ")") - 1
    inner = h[open_k + 1:close_k]
    depth = 0
    for k, t in enumerate(inner):
        if t.kind == PUNCT and t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.kind == PUNCT and t.text in (")", "]", "}", ">"):
            depth -= 1
        elif t.kind == PUNCT and t.text == ":" and depth == 0:
            # Exclude `::` (lexed as its own token, so plain ':' is safe).
            return inner[:k], inner[k + 1:]
        elif t.kind == PUNCT and t.text == ";":
            return None  # classic for
    return None


def tokens_text(toks: List[Token]) -> str:
    return " ".join(t.text for t in toks if t.kind != STR or len(t.text) < 40)
