"""txrep-analyze driver: TU discovery, backend selection, rule dispatch.

Translation units come from `compile_commands.json` when available (the
canonical definition of "what we build"), filtered to the project's `src/`;
headers under `src/` are always added, since three of the four rule families
live mostly in headers. Without a compilation database the driver falls back
to globbing — the internal backend is a structural parser and does not need
compile flags, only file paths.

Backends:
  internal  pure-Python lexer + structural parser (always available, the
            reference for fixture tests)
  clang     libclang via `clang.cindex` refining declared types from the real
            AST; used when importable, otherwise silently unavailable
  auto      clang when importable, else internal
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from . import parser as internal_backend
from .baseline import Baseline
from .index import ProjectIndex
from .model import Diagnostic, TranslationUnit
from .rules import ALL_FAMILIES


def discover_files(repo_root: str, compdb_dir: Optional[str],
                   src_rel: str = "src") -> List[str]:
    """Returns repo-relative paths of all TUs to analyze."""
    files: List[str] = []
    src_root = os.path.join(repo_root, src_rel)
    if compdb_dir:
        compdb = os.path.join(compdb_dir, "compile_commands.json")
        if os.path.isfile(compdb):
            with open(compdb, "r", encoding="utf-8") as f:
                for entry in json.load(f):
                    path = entry.get("file", "")
                    if not os.path.isabs(path):
                        path = os.path.join(entry.get("directory", ""), path)
                    path = os.path.realpath(path)
                    rel = os.path.relpath(path, repo_root)
                    if rel.startswith(src_rel + os.sep) and \
                            rel not in files and os.path.isfile(path):
                        files.append(rel)
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                rel = os.path.relpath(os.path.join(dirpath, name), repo_root)
                if rel not in files:
                    files.append(rel)
    return sorted(files)


def select_backend(requested: str):
    """Returns (parse_fn, backend_name)."""
    if requested in ("clang", "auto"):
        try:
            from . import backend_clang
            if backend_clang.available():
                return backend_clang.parse_file, "clang"
        except Exception:  # pragma: no cover - libclang quirks
            if requested == "clang":
                raise
    if requested == "clang":
        raise RuntimeError("libclang backend requested but clang.cindex is "
                           "not importable")
    return internal_backend.parse_file, "internal"


def analyze(repo_root: str, files: List[str], backend,
            families: List[str]) -> List[Diagnostic]:
    tus: List[TranslationUnit] = []
    index = ProjectIndex()
    for rel in files:
        tu = backend(os.path.join(repo_root, rel), rel.replace(os.sep, "/"))
        tus.append(tu)
        index.add_tu(tu)
    diags: List[Diagnostic] = []
    config = {}
    for tu in tus:
        for fam in families:
            diags.extend(ALL_FAMILIES[fam].run(tu, index, config))
    # De-duplicate (a header parsed once is enough; defensive all the same).
    seen = set()
    out = []
    for d in sorted(diags, key=lambda d: (d.path, d.line, d.rule)):
        key = (d.path, d.line, d.rule, d.message)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="txrep-analyze",
        description="AST-level analyzer suite for the txrep codebase: "
                    "determinism audit, Status-discard, lock-annotation "
                    "completeness, blocking-under-lock.")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: two levels above this "
                         "script)")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json")
    ap.add_argument("--src", default="src", help="source subtree to analyze")
    ap.add_argument("--backend", default="auto",
                    choices=["auto", "clang", "internal"])
    ap.add_argument("--rules", default="all",
                    help="comma-separated rule families: determinism,status,"
                         "lock-annotations,blocking (default: all)")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: tools/analyze/baseline.json"
                         " under the repo root; 'none' disables)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write the current diagnostic set as the baseline "
                         "and exit 0")
    ap.add_argument("--files", nargs="*", default=None,
                    help="explicit repo-relative files (overrides discovery)")
    args = ap.parse_args(argv)

    repo_root = args.repo_root or os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..",
                     ".."))

    if args.files:
        files = args.files
    else:
        files = discover_files(repo_root, args.compdb, args.src)
    if not files:
        print("txrep-analyze: no translation units found", file=sys.stderr)
        return 2

    backend, backend_name = select_backend(args.backend)
    if args.rules == "all":
        families = list(ALL_FAMILIES)
    else:
        families = [f.strip() for f in args.rules.split(",") if f.strip()]
        unknown = [f for f in families if f not in ALL_FAMILIES]
        if unknown:
            print(f"txrep-analyze: unknown rule families {unknown}",
                  file=sys.stderr)
            return 2

    diags = analyze(repo_root, files, backend, families)

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = os.path.join(repo_root, "tools", "analyze",
                                     "baseline.json")
    if args.write_baseline:
        Baseline.write(baseline_path, diags)
        print(f"txrep-analyze: wrote {len(diags)} suppressions to "
              f"{baseline_path}")
        return 0

    errors: List[str] = []
    if baseline_path != "none":
        baseline = Baseline.load(baseline_path)
        diags, errors = baseline.apply(diags)

    for d in diags:
        print(d.render())
    for e in errors:
        print(e)
    status = 1 if (diags or errors) else 0
    print(f"txrep-analyze: {len(files)} files, backend={backend_name}, "
          f"{len(diags)} diagnostic(s), {len(errors)} baseline error(s): "
          f"{'FAILED' if status else 'OK'}")
    return status
