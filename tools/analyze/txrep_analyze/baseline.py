"""Baseline / suppression file support.

`tools/analyze/baseline.json` holds the reviewed, justified exceptions that
let the analyzer land green and then *ratchet*: new diagnostics fail the
build, removing code removes its entry (a stale entry is an error, so the
baseline can only shrink or be consciously re-justified).

Entry shape:
  { "rule": "lock-blocking-io",
    "file": "src/kv/disk_node.cc",
    "context": "DiskKvNode::Put",          # enclosing function/class; "" = any
    "note": "single-writer log holds mu_ across the append by design" }

One entry suppresses every diagnostic of `rule` in `file` whose context
matches — suppression is per critical-section/per-loop, not per token, so a
justified blocking section does not need one entry per fwrite call.
`note` is mandatory: an unexplained suppression is itself an error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Tuple

from .model import Diagnostic


@dataclass
class BaselineEntry:
    rule: str
    file: str
    context: str
    note: str
    hits: int = 0

    def matches(self, d: Diagnostic) -> bool:
        if self.rule != d.rule or self.file != d.path:
            return False
        return self.context == "" or self.context == d.context


class Baseline:
    def __init__(self, entries: List[BaselineEntry]):
        self.entries = entries

    @staticmethod
    def load(path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as f:
                raw = json.load(f)
        except FileNotFoundError:
            return Baseline([])
        entries = [BaselineEntry(rule=e["rule"], file=e["file"],
                                 context=e.get("context", ""),
                                 note=e.get("note", ""))
                   for e in raw.get("suppressions", [])]
        return Baseline(entries)

    def apply(self, diags: List[Diagnostic]) -> Tuple[List[Diagnostic],
                                                      List[str]]:
        """Returns (unsuppressed diagnostics, baseline errors)."""
        errors: List[str] = []
        kept: List[Diagnostic] = []
        for d in diags:
            matched = False
            for e in self.entries:
                if e.matches(d):
                    e.hits += 1
                    matched = True
                    break
            if not matched:
                kept.append(d)
        for e in self.entries:
            if not e.note.strip():
                errors.append(
                    f"baseline: entry {e.rule} @ {e.file} ({e.context or '*'})"
                    " has no justification note")
            if e.hits == 0:
                errors.append(
                    f"baseline: stale entry {e.rule} @ {e.file} "
                    f"({e.context or '*'}) no longer matches anything — "
                    "delete it (the ratchet only goes one way)")
        return kept, errors

    @staticmethod
    def write(path: str, diags: List[Diagnostic]) -> None:
        """Seeds a baseline from current diagnostics (notes left to fill)."""
        seen = {}
        for d in diags:
            key = (d.rule, d.path, d.context)
            seen.setdefault(key, 0)
            seen[key] += 1
        out = {"suppressions": [
            {"rule": r, "file": f, "context": c,
             "note": "TODO: justify or fix"}
            for (r, f, c) in sorted(seen)]}
        with open(path, "w", encoding="utf-8") as fobj:
            json.dump(out, fobj, indent=2)
            fobj.write("\n")
