"""Micro-AST shared by the internal and libclang backends.

The rule engine runs on this model only, so both backends stay swappable.
The model is deliberately coarse — declarations carry their type as
*normalized text* rather than a resolved type graph — because the four rule
families need (a) class membership, (b) declared-type text, (c) statement /
scope structure of function bodies, and (d) comments for waivers, and nothing
deeper. The libclang backend fills the same fields from real AST nodes; the
internal backend reconstructs them from the token stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .lexer import LexedFile, Token


def normalize_type(text: str) -> str:
    """Canonical spelling for declared-type comparisons.

    Drops cv/ref/storage noise and whitespace so that
    `const std::unordered_map<Key, Value>&` == `std::unordered_map<Key,Value>`.
    """
    out = []
    for tok in text.replace("&", " ").replace("*", " * ").split():
        if tok in ("const", "constexpr", "volatile", "mutable", "static",
                   "inline", "typename", "struct", "class"):
            continue
        out.append(tok)
    joined = " ".join(out)
    for a, b in ((" <", "<"), ("< ", "<"), (" >", ">"), (" ,", ","),
                 (", ", ","), (" ::", "::"), (":: ", "::"), (" (", "("),
                 ("( ", "("), (" )", ")")):
        while a in joined:
            joined = joined.replace(a, b)
    return joined


@dataclass
class MemberDecl:
    """A data member of a class/struct."""
    name: str
    type_text: str          # normalized
    line: int
    annotations: List[str] = field(default_factory=list)  # macro names seen
    is_static: bool = False
    is_const: bool = False  # const or constexpr member


@dataclass
class MethodDecl:
    """A member function declaration (body, if any, becomes a FunctionDef)."""
    name: str
    return_type: str        # normalized; "" for ctors/dtors/operators
    line: int


@dataclass
class ClassDecl:
    name: str               # qualified with outer classes: "Outer::Inner"
    line: int
    members: List[MemberDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)


@dataclass
class VarDecl:
    """A local variable / parameter inside a function body."""
    name: str
    type_text: str          # normalized; "auto" stays "auto"
    line: int
    init_text: str = ""     # normalized text of the initializer, if simple


@dataclass
class FunctionDef:
    """A function definition with its body as a raw token slice.

    `body` includes the outer braces. `params` are VarDecls for parameters.
    `owner` is the enclosing class name ("" for free functions).
    """
    name: str
    qual_name: str          # "Class::Name" or "Name"
    owner: str
    return_type: str        # normalized
    line: int
    params: List[VarDecl] = field(default_factory=list)
    body: List[Token] = field(default_factory=list)


@dataclass
class TranslationUnit:
    path: str               # repo-relative path
    lexed: LexedFile
    classes: List[ClassDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def find_class(self, name: str) -> Optional[ClassDecl]:
        for c in self.classes:
            if c.name == name or c.name.endswith("::" + name):
                return c
        return None


@dataclass
class Diagnostic:
    path: str
    line: int
    rule: str
    message: str
    hint: str = ""
    # Context for baseline keying: enclosing function/class, best effort.
    context: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text
