"""txrep-analyze: AST-level analyzer suite for the txrep codebase.

Four project-specific rule families (DESIGN.md §12):
  1. determinism audit      — nondeterminism must not reach replica state
  2. Status-discard         — what [[nodiscard]] cannot see
  3. lock-annotation completeness — GUARDED_BY coverage, not just correctness
  4. blocking-under-lock    — no I/O, unbounded waits, or fan-out in
                              critical sections

Entry point: tools/analyze/txrep-analyze (or `python3 -m txrep_analyze`).
"""

__version__ = "1.0"
