"""Lock-annotation completeness (rule family 3).

The clang thread-safety analysis (ci.sh `annotations` flavor) only checks
fields that *carry* a TXREP_GUARDED_BY annotation — an unannotated field in a
mutex-owning class compiles silently everywhere, and on GCC builds even the
annotated ones are unchecked. This rule closes the gap structurally: in any
class that owns a `check::Mutex` / `check::SharedMutex`, every mutable data
member must either be annotated (TXREP_GUARDED_BY / TXREP_PT_GUARDED_BY) or
carry an explicit `// analyze: lock-free(<why>)` waiver.

Exempt by construction (no lock needed to touch them):
  - the lock primitives themselves (Mutex, SharedMutex, CondVar, KeyedMutex);
  - `std::atomic<...>` members;
  - const / constexpr members (immutable after construction);
  - static members (not instance state).
"""

from __future__ import annotations

from typing import List

from ..model import Diagnostic, TranslationUnit

LOCK_FREE_WAIVER = "analyze: lock-free("

_MUTEX_TYPES = ("check::Mutex", "Mutex", "check::SharedMutex", "SharedMutex")
_EXEMPT_TYPE_PARTS = ("Mutex", "CondVar", "KeyedMutex", "std::atomic<",
                      "LockOrder")


def _is_mutex_member(type_text: str) -> bool:
    t = type_text.replace("*", "").strip()
    return t in _MUTEX_TYPES


def _is_exempt_type(type_text: str) -> bool:
    t = type_text.strip()
    if t.startswith("std::atomic<") or t.replace("*", "").strip() == "std::atomic":
        return True
    base = t.replace("*", "").strip()
    tail = base.split("::")[-1].split("<")[0]
    return tail in ("Mutex", "SharedMutex", "CondVar", "KeyedMutex",
                    "MutexLock", "WriterMutexLock", "ReaderMutexLock")


def run(tu: TranslationUnit, index, config) -> List[Diagnostic]:
    # Headers declare the classes; analyzing .cc files too would double-report
    # for classes fully defined in headers, so report per-TU and let the
    # driver de-duplicate identical (path, line, rule) triples.
    diags: List[Diagnostic] = []
    for cls in tu.classes:
        owns_mutex = any(_is_mutex_member(m.type_text) for m in cls.members
                         if "*" not in m.type_text)
        if not owns_mutex:
            continue
        for m in cls.members:
            if m.annotations:
                continue
            if m.is_const or m.is_static:
                continue
            if _is_exempt_type(m.type_text):
                continue
            if LOCK_FREE_WAIVER in tu.lexed.comment_near(m.line):
                continue
            diags.append(Diagnostic(
                tu.path, m.line, "lock-guardedby-missing",
                f"`{cls.name}::{m.name}` is unannotated in a mutex-owning "
                "class",
                hint="add TXREP_GUARDED_BY(mu)/TXREP_PT_GUARDED_BY(mu), make "
                     "it const, or waive with `// analyze: lock-free(<why>)`",
                context=cls.name))
    return diags
