"""Rule registry for txrep-analyze.

Each rule module exports `run(tu, index, config) -> List[Diagnostic]`.
Rule IDs are stable strings printed in diagnostics and used as baseline and
`// expect:` keys:

  determinism audit      det-unordered-iter, det-nondet-clock,
                         det-nondet-rand, det-pointer-key
  status discipline      status-discard, status-unused
  lock discipline        lock-guardedby-missing
  blocking under lock    lock-blocking-io, lock-blocking-wait,
                         lock-blocking-fanout
"""

from . import blocking, determinism, lock_annotations, status_discard

ALL_FAMILIES = {
    "determinism": determinism,
    "status": status_discard,
    "lock-annotations": lock_annotations,
    "blocking": blocking,
}

ALL_RULE_IDS = [
    "det-unordered-iter", "det-nondet-clock", "det-nondet-rand",
    "det-pointer-key", "status-discard", "status-unused",
    "lock-guardedby-missing", "lock-blocking-io", "lock-blocking-wait",
    "lock-blocking-fanout",
]
