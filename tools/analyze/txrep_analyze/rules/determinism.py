"""Determinism audit (rule family 1).

The replication scheme's core invariant is that concurrent replay on a KV
replica is byte-identical to serial replay of the transactional log
(DESIGN.md §12). Three bug shapes silently break it:

  det-unordered-iter   iterating a std::unordered_map/unordered_set inside an
                       apply-path translation unit with the loop body feeding
                       a replica-visible sink (store mutation, log/codec
                       encoding, dump building, file write). Hash-iteration
                       order is implementation- and salt-dependent, so any
                       order-sensitive sink diverges across replicas.
  det-nondet-clock /   raw wall-clock or RNG primitives outside the
  det-nondet-rand      sanctioned layers (common/clock.h, common/random.*,
                       obs/, trace/) — replayed state must never depend on
                       when or where it replays.
  det-pointer-key      std::map/std::set keyed by a pointer type: ordered,
                       but ordered by *address*, which differs per process.
"""

from __future__ import annotations

from typing import List

from ..body import (Scope, Statement, TypeResolver, build_scope, find_calls,
                    iter_scopes, range_for_parts, statement_range_for)
from ..lexer import ID, PUNCT
from ..model import Diagnostic, TranslationUnit

# Directories whose translation units are on the replay/apply path.
APPLY_PATH_DIRS = ("src/core/", "src/kv/", "src/recov/", "src/txrep/",
                   "src/codec/")

# Files allowed to touch clocks / RNG primitives directly.
SANCTIONED_TIMING_FILES = ("src/common/clock.h", "src/common/random.h",
                           "src/common/random.cc")
SANCTIONED_TIMING_DIRS = ("src/obs/", "src/trace/")

# Loop-body calls that make hash-order iteration replica-visible.
SINK_CALLEES = {
    "Put", "Delete", "MultiWrite", "MultiPut", "MultiDelete", "Append",
    "AppendLengthPrefixed", "AppendFixed64", "AppendFixed32", "Encode",
    "EncodeTo", "push_back", "emplace_back", "emplace", "insert", "AddKey",
    "fwrite", "Write", "WriteRecord", "append",
}

_UNORDERED = ("std::unordered_map<", "std::unordered_set<")
_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock",
           "gettimeofday", "clock_gettime", "localtime", "gmtime"}
_RANDS = {"rand", "srand", "random_device", "rand_r", "drand48", "lrand48"}


def run(tu: TranslationUnit, index, config) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    diags.extend(_clock_and_rand(tu))
    diags.extend(_pointer_keys(tu))
    if tu.path.startswith(APPLY_PATH_DIRS):
        diags.extend(_unordered_iteration(tu, index))
    return diags


def _sanctioned_for_timing(path: str) -> bool:
    return path in SANCTIONED_TIMING_FILES or \
        path.startswith(SANCTIONED_TIMING_DIRS)


def _clock_and_rand(tu: TranslationUnit) -> List[Diagnostic]:
    if _sanctioned_for_timing(tu.path):
        return []
    diags: List[Diagnostic] = []
    toks = tu.lexed.tokens
    for k, t in enumerate(toks):
        if t.kind != ID:
            continue
        nxt = toks[k + 1] if k + 1 < len(toks) else None
        if t.text in _CLOCKS:
            diags.append(Diagnostic(
                tu.path, t.line, "det-nondet-clock",
                f"raw clock `{t.text}` outside the sanctioned timing layer",
                hint="use txrep::NowMicros() (common/clock.h); replica-visible "
                     "state must not read wall clocks"))
        elif t.text in _RANDS:
            # `rand` must be a call (or std::-qualified) to count; plain
            # identifiers named rand_* are fine.
            is_call = nxt is not None and nxt.kind == PUNCT and nxt.text == "("
            qualified = k >= 2 and toks[k - 1].text == "::"
            if t.text in ("random_device",) or is_call or qualified:
                diags.append(Diagnostic(
                    tu.path, t.line, "det-nondet-rand",
                    f"raw RNG `{t.text}` outside common/random.h",
                    hint="route randomness through txrep::Random (seedable, "
                         "deterministic under test)"))
    return diags


def _pointer_keys(tu: TranslationUnit) -> List[Diagnostic]:
    """Flags `std::map<T*, ...>` / `std::set<T*>` anywhere in the file."""
    diags: List[Diagnostic] = []
    toks = tu.lexed.tokens
    for k, t in enumerate(toks):
        if t.kind != ID or t.text not in ("map", "set"):
            continue
        if k < 2 or toks[k - 1].text != "::" or toks[k - 2].text != "std":
            continue
        if k + 1 >= len(toks) or toks[k + 1].text != "<":
            continue
        # First template argument: tokens until a top-level `,` or `>`.
        depth = 0
        j = k + 1
        first_arg: List[str] = []
        while j < len(toks):
            tt = toks[j]
            if tt.kind == PUNCT and tt.text == "<":
                depth += 1
            elif tt.kind == PUNCT and tt.text in (">", ">>"):
                depth -= 2 if tt.text == ">>" else 1
                if depth <= 0:
                    break
            elif tt.kind == PUNCT and tt.text == "," and depth == 1:
                break
            elif depth >= 1:
                first_arg.append(tt.text)
            j += 1
        if first_arg and first_arg[-1] == "*":
            diags.append(Diagnostic(
                tu.path, t.line, "det-pointer-key",
                f"ordered std::{t.text} keyed by a pointer "
                f"(`{' '.join(first_arg)}`) iterates in address order",
                hint="key by a stable id, or use an unordered container if "
                     "iteration order never escapes"))
    return diags


def _unordered_iteration(tu: TranslationUnit, index) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for fn in tu.functions:
        if not fn.body:
            continue
        root = build_scope(fn.body)
        resolver = TypeResolver(index, fn, root)
        for scope in iter_scopes(root):
            rng = range_for_parts(scope)
            iter_line = scope.line
            ranged_type = ""
            if rng is not None:
                _, expr = rng
                ranged_type = resolver.type_of_expr(expr)
            else:
                # Classic iterator loop: `for (auto it = m.begin(); ...)`.
                ranged_type = _iterator_loop_type(scope, resolver)
            if not ranged_type or not ranged_type.startswith(_UNORDERED):
                continue
            sink = _first_sink(scope)
            if sink is None:
                continue
            diags.append(_iter_diag(tu, fn, iter_line, ranged_type, sink))
        # Braceless loops never open a scope: `for (x : m) sink(x);` is a
        # single Statement. Scan those too.
        for scope in iter_scopes(root):
            for st in scope.statements:
                if not isinstance(st, Statement):
                    continue
                parts = statement_range_for(st)
                if parts is None:
                    continue
                _, expr, body_toks = parts
                ranged_type = resolver.type_of_expr(expr)
                if not ranged_type or not ranged_type.startswith(_UNORDERED):
                    continue
                sink = None
                for call in find_calls(body_toks):
                    if call.callee in SINK_CALLEES:
                        sink = call.callee
                        break
                if sink is None and any(
                        t.kind == PUNCT and t.text == "<<"
                        for t in body_toks):
                    sink = "operator<<"
                if sink is not None:
                    diags.append(_iter_diag(tu, fn, st.line, ranged_type,
                                            sink))
    return diags


def _iter_diag(tu, fn, line: int, ranged_type: str, sink: str) -> Diagnostic:
    return Diagnostic(
        tu.path, line, "det-unordered-iter",
        f"iteration over `{ranged_type.split('<')[0]}` feeds "
        f"`{sink}` on the apply path; hash order is not "
        "replica-deterministic",
        hint="sort keys first, iterate an ordered mirror, or prove "
             "the sink order-insensitive and baseline this",
        context=fn.qual_name)


def _iterator_loop_type(scope: Scope, resolver: TypeResolver) -> str:
    h = scope.header
    if not (h and h[0].kind == ID and h[0].text == "for"):
        return ""
    texts = [t.text for t in h]
    if "begin" not in texts:
        return ""
    k = texts.index("begin")
    # receiver chain before `.begin(`/`->begin(`.
    j = k - 1
    if j < 1 or h[j].text not in (".", "->"):
        return ""
    recv_end = j
    j -= 1
    while j - 1 >= 0 and h[j - 1].text in (".", "->", "::"):
        j -= 2
    return resolver.type_of_expr(h[j:recv_end])


def _first_sink(scope: Scope):
    """First sink call anywhere inside the loop body (nested scopes too)."""
    for s in iter_scopes(scope):
        stmts = s.statements if s is not scope else scope.statements
        for st in stmts:
            toks = st.tokens if isinstance(st, Statement) else st.header
            for call in find_calls(toks):
                if call.callee in SINK_CALLEES:
                    return call.callee
            # Stream writes: `out << x` inside the loop body.
            for t in toks:
                if t.kind == PUNCT and t.text == "<<":
                    return "operator<<"
    return None
