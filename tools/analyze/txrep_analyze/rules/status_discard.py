"""Status-discard discipline (rule family 2).

`txrep::Status` and `txrep::Result<T>` are `[[nodiscard]]`, so the compiler
already rejects a bare `store->Put(k, v);`. This rule catches what the
attribute cannot see:

  status-discard   a `(void)` / `static_cast<void>` cast of a
                   Status/Result-returning call without an
                   `// analyze: discard(<why>)` waiver. The cast silences the
                   compiler; the waiver makes the justification reviewable.
  status-unused    a Status bound to a local variable that is never read
                   afterwards — morally the same bug wearing a name.
"""

from __future__ import annotations

from typing import List, Optional

from ..body import (Scope, Statement, TypeResolver, build_scope, find_calls,
                    iter_scopes, parse_local_decl)
from ..lexer import ID, PUNCT, Token
from ..model import Diagnostic, TranslationUnit

DISCARD_WAIVER = "analyze: discard("


def run(tu: TranslationUnit, index, config) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for fn in tu.functions:
        if not fn.body:
            continue
        root = build_scope(fn.body)
        resolver = TypeResolver(index, fn, root)
        for scope in iter_scopes(root):
            for st in scope.statements:
                if not isinstance(st, Statement):
                    continue
                d = _check_void_cast(tu, fn, resolver, index, st)
                if d:
                    diags.append(d)
                d = _check_unused_status(tu, fn, resolver, index, st, scope)
                if d:
                    diags.append(d)
    return diags


def _returns_statusish(index, resolver: TypeResolver, fn_owner: str,
                       toks: List[Token]) -> Optional[str]:
    """If `toks` is a call chain returning Status/Result, returns the callee
    name, else None."""
    calls = find_calls(toks)
    if not calls:
        return None
    call = calls[-1]  # outermost/last call in the chain decides the value
    ret = None
    if call.receiver:
        recv_type = resolver.type_of_expr(call.receiver)
        if recv_type:
            from ..body import class_of
            ret = index.method_return(class_of(recv_type), call.callee)
    if ret is None:
        ret = index.method_return(fn_owner, call.callee)
    if ret is None:
        ret = index.unambiguous_return(call.callee)
    if ret and (ret == "Status" or ret.endswith("::Status") or
                ret.startswith("Result<") or "::Result<" in ret):
        return call.callee
    return None


def _check_void_cast(tu: TranslationUnit, fn, resolver, index,
                     st: Statement) -> Optional[Diagnostic]:
    toks = st.tokens
    inner: List[Token] = []
    if len(toks) >= 4 and toks[0].text == "(" and toks[1].text == "void" and \
            toks[2].text == ")":
        inner = toks[3:]
    elif len(toks) >= 6 and toks[0].text == "static_cast" and \
            toks[1].text == "<" and toks[2].text == "void":
        inner = toks[5:]
    if not inner:
        return None
    callee = _returns_statusish(index, resolver, fn.owner, inner)
    if callee is None:
        return None
    if DISCARD_WAIVER in tu.lexed.comment_near(toks[0].line):
        return None
    return Diagnostic(
        tu.path, toks[0].line, "status-discard",
        f"Status from `{callee}` discarded via void cast without a waiver",
        hint="handle the status, or annotate the line with "
             "`// analyze: discard(<why>)`",
        context=fn.qual_name)


def _check_unused_status(tu: TranslationUnit, fn, resolver, index,
                         st: Statement, scope: Scope) -> Optional[Diagnostic]:
    decl = parse_local_decl(st)
    if decl is None:
        return None
    is_status = decl.type_text == "Status" or decl.type_text.endswith("::Status")
    if decl.type_text == "auto" and decl.init_text:
        init_toks = [t for t in st.tokens if t.line >= decl.line]
        is_status = _returns_statusish(index, resolver, fn.owner,
                                       init_toks) is not None
    if not is_status:
        return None
    # Used anywhere later in this scope (or nested scopes)?
    seen_decl = False
    for s in iter_scopes(scope):
        for item in s.statements:
            toks = item.tokens if isinstance(item, Statement) else item.header
            if item is st:
                seen_decl = True
                continue
            if not seen_decl and s is scope:
                continue
            for t in toks:
                if t.kind == ID and t.text == decl.name:
                    return None
        # Nested scopes of statements after the decl: iter_scopes order is
        # parent-first, so nested bodies are separate Scope objects whose
        # tokens we scan above via their statements; headers too.
        if s is not scope:
            for t in s.header:
                if t.kind == ID and t.text == decl.name:
                    return None
    if DISCARD_WAIVER in tu.lexed.comment_near(decl.line):
        return None
    return Diagnostic(
        tu.path, decl.line, "status-unused",
        f"Status bound to `{decl.name}` but never read",
        hint="check .ok() / propagate it, or discard explicitly with a "
             "`// analyze: discard(<why>)` waiver",
        context=fn.qual_name)
