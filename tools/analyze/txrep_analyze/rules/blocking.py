"""Blocking-under-lock (rule family 4).

A `check::MutexLock` (or writer/reader lock) pins every thread that contends
on the same mutex for as long as the critical section runs. Blocking work
inside that window is a latency bug at best and a lock-convoy/deadlock risk
at worst — and on the apply path it serializes exactly the fan-out that the
batched pipeline exists to parallelize. Three shapes are flagged while a lock
guard is live in the enclosing scope chain:

  lock-blocking-io       file I/O (fopen/fwrite/fsync/rename/... or an
                         fstream constructed under the lock)
  lock-blocking-wait     unbounded waits: CondVar::Await, pool WaitIdle,
                         TaskHandle::Wait, SleepForMicros
  lock-blocking-fanout   KV batch fan-out (MultiWrite/MultiPut/MultiDelete/
                         MultiGet) — dispatches to a thread pool and waits
  lock-blocking-socket   raw socket syscalls (connect/accept/send/recv/
                         poll/...) — a slow or dead peer parks the critical
                         section for the kernel timeout

Sites that hold the lock *by design* (DiskKvNode's single-writer log, the
ticket applier's per-table order guarantee) are not waived inline — they are
recorded in tools/analyze/baseline.json with a one-line justification so the
list of "blocking sections we accept" stays reviewable in one place.
`CondVar::Wait`/`WaitForMicros` are deliberately not flagged: they release
the mutex while blocked, which is the whole point of a condition variable;
`Await` is flagged because it hides an unbounded predicate loop at call sites
that often did not mean to block.
"""

from __future__ import annotations

from typing import List, Optional

from ..body import (Scope, Statement, TypeResolver, build_scope, class_of,
                    find_calls, iter_scopes, parse_local_decl)
from ..lexer import ID, Token
from ..model import Diagnostic, TranslationUnit

_LOCK_GUARD_TYPES = {
    "check::MutexLock", "MutexLock", "check::WriterMutexLock",
    "WriterMutexLock", "check::ReaderMutexLock", "ReaderMutexLock",
}

_IO_CALLEES = {
    "fopen", "fclose", "fread", "fwrite", "fflush", "fsync", "fdatasync",
    "ftruncate", "rename", "unlink", "remove", "open", "close", "pread",
    "pwrite", "mkdir", "opendir", "readdir",
}
_IO_TYPES = ("std::ofstream", "std::ifstream", "std::fstream", "ofstream",
             "ifstream", "fstream")
_WAIT_CALLEES = {"Await", "WaitIdle", "SleepForMicros"}
_FANOUT_CALLEES = {"MultiWrite", "MultiPut", "MultiDelete", "MultiGet"}
_SOCKET_CALLEES = {
    "socket", "socketpair", "connect", "accept", "accept4", "bind", "listen",
    "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg", "poll",
    "ppoll", "getaddrinfo",
}


def run(tu: TranslationUnit, index, config) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for fn in tu.functions:
        if not fn.body:
            continue
        root = build_scope(fn.body)
        resolver = TypeResolver(index, fn, root)
        _walk(tu, fn, resolver, index, root, lock_live=False, diags=diags)
    return diags


def _walk(tu, fn, resolver, index, scope: Scope, lock_live: bool,
          diags: List[Diagnostic]) -> None:
    live = lock_live
    for item in scope.statements:
        if isinstance(item, Statement):
            if live:
                _check_tokens(tu, fn, resolver, index, item.tokens, diags)
            decl = parse_local_decl(item)
            if decl and decl.type_text in _LOCK_GUARD_TYPES:
                live = True
            if live and decl and decl.type_text in _IO_TYPES:
                diags.append(Diagnostic(
                    tu.path, decl.line, "lock-blocking-io",
                    f"file stream `{decl.name}` opened while a lock guard "
                    "is live", hint="move the I/O outside the critical "
                    "section or stage into a buffer",
                    context=fn.qual_name))
        else:  # nested scope
            if live:
                _check_tokens(tu, fn, resolver, index, item.header, diags)
            _walk(tu, fn, resolver, index, item, live, diags)


def _check_tokens(tu, fn, resolver, index, toks: List[Token],
                  diags: List[Diagnostic]) -> None:
    for call in find_calls(toks):
        rule = _classify(call, resolver, index)
        if rule is None:
            continue
        what = {
            "lock-blocking-io": "file I/O",
            "lock-blocking-wait": "an unbounded wait",
            "lock-blocking-fanout": "KV batch fan-out",
            "lock-blocking-socket": "a socket syscall",
        }[rule]
        diags.append(Diagnostic(
            tu.path, call.line, rule,
            f"`{call.callee}` performs {what} while a lock guard is live",
            hint="shrink the critical section, or baseline with a "
                 "justification if the lock must span it",
            context=fn.qual_name))


def _classify(call, resolver, index) -> Optional[str]:
    if call.callee in _IO_CALLEES:
        # std:: / plain C I/O only; a method named `open` on a project class
        # is resolved away by checking the receiver type.
        if call.receiver:
            recv = resolver.type_of_expr(call.receiver)
            if recv and "FILE" not in recv and not recv.startswith("std::"):
                return None
        return "lock-blocking-io"
    if call.callee in _WAIT_CALLEES:
        return "lock-blocking-wait"
    if call.callee == "Wait":
        # TaskHandle::Wait / future-style waits block; CondVar::Wait releases
        # the mutex and is the sanctioned primitive — distinguish by type.
        if call.receiver:
            recv = resolver.type_of_expr(call.receiver)
            if recv and class_of(recv).split("::")[-1] == "CondVar":
                return None
            if not recv:
                return None  # unknown receiver: stay quiet
            return "lock-blocking-wait"
        return None
    if call.callee in _FANOUT_CALLEES:
        return "lock-blocking-fanout"
    if call.callee in _SOCKET_CALLEES:
        # Raw syscalls only: a PascalCase-free lowercase name with a project
        # receiver (e.g. a method that happens to shadow one) is resolved
        # away by checking the receiver type.
        if call.receiver:
            recv = resolver.type_of_expr(call.receiver)
            if recv and not recv.startswith("std::"):
                return None
        return "lock-blocking-socket"
    return None
