"""C++ lexer for txrep-analyze.

Produces a token stream with comments lifted out as trivia (the rule engine
consults them for `// analyze: ...` waivers). This is not a full preprocessor:
macros are kept as identifier tokens (the project's annotation macros such as
TXREP_GUARDED_BY are recognized *by name* downstream), and preprocessor
directives are collapsed into single `pp` tokens so conditional-compilation
regions are visible but not expanded.

Handled correctly because rules depend on it:
  - line ("//") and block ("/* */") comments, kept with line numbers;
  - string literals including raw strings (R"delim( ... )delim"), char
    literals, and escapes — a "for (" inside a string must not look like code;
  - digraph-free modern C++ punctuation, longest-match (e.g. "->", "::",
    "<<=", "...");
  - line continuation inside preprocessor directives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Dict

# Token kinds.
ID = "id"
NUM = "num"
STR = "str"
CHAR = "char"
PUNCT = "punct"
PP = "pp"

_PUNCTUATORS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##", "{", "}", "[", "]", "(", ")", ";", ":", ",", ".", "?", "+",
    "-", "*", "/", "%", "&", "|", "^", "~", "!", "=", "<", ">", "#",
]


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}@{self.line}"


@dataclass
class Comment:
    line: int        # line the comment starts on
    end_line: int    # line the comment ends on (== line for // comments)
    text: str        # comment body without the // or /* */ markers


class LexedFile:
    """Token stream plus comment trivia for one source file."""

    def __init__(self, tokens: List[Token], comments: List[Comment]):
        self.tokens = tokens
        self.comments = comments
        # line -> comment text, for waiver lookups. A block comment maps every
        # line it covers; later comments on a line win (rare, harmless).
        self.comment_by_line: Dict[int, str] = {}
        for c in comments:
            for ln in range(c.line, c.end_line + 1):
                prev = self.comment_by_line.get(ln, "")
                self.comment_by_line[ln] = (prev + " " + c.text).strip()

    def comment_near(self, line: int) -> str:
        """Comment text attached to `line`: same line or the line above."""
        return (self.comment_by_line.get(line, "") + " " +
                self.comment_by_line.get(line - 1, "")).strip()


def _is_id_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_id_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def lex(source: str) -> LexedFile:
    tokens: List[Token] = []
    comments: List[Comment] = []
    i, n, line = 0, len(source), 1

    while i < n:
        ch = source[i]

        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue

        # Line comment.
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            if j == -1:
                j = n
            comments.append(Comment(line, line, source[i + 2:j].strip()))
            i = j
            continue

        # Block comment.
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j == -1:
                j = n - 2
            body = source[i + 2:j]
            start = line
            line += body.count("\n")
            comments.append(Comment(start, line, " ".join(body.split())))
            i = j + 2
            continue

        # Preprocessor directive (only when '#' starts the logical line).
        if ch == "#" and _at_line_start(tokens, line):
            j = i
            while j < n:
                k = source.find("\n", j)
                if k == -1:
                    k = n
                    j = n
                    break
                # Line continuation keeps the directive going.
                if source[k - 1] == "\\" or (k >= 2 and source[k - 2:k] == "\\\r"):
                    line += 1
                    j = k + 1
                    continue
                j = k
                break
            tokens.append(Token(PP, " ".join(source[i:j].split()), line))
            i = j
            continue

        # Raw string literal: (u8|u|U|L)? R"delim( ... )delim"
        if ch == "R" and i + 1 < n and source[i + 1] == '"':
            j = source.find("(", i + 2)
            if j != -1:
                delim = source[i + 2:j]
                closer = ")" + delim + '"'
                k = source.find(closer, j + 1)
                if k != -1:
                    text = source[i:k + len(closer)]
                    tokens.append(Token(STR, text, line))
                    line += text.count("\n")
                    i = k + len(closer)
                    continue

        # String / char literal with escapes.
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == quote:
                    break
                if source[j] == "\n":  # unterminated; bail at line end
                    break
                j += 1
            text = source[i:min(j + 1, n)]
            tokens.append(Token(STR if quote == '"' else CHAR, text, line))
            i = min(j + 1, n)
            continue

        # Identifier / keyword (string prefixes like u8"x" hit the quote path
        # next round; treating the prefix as an id token is fine for rules).
        if _is_id_start(ch):
            j = i + 1
            while j < n and _is_id_char(source[j]):
                j += 1
            tokens.append(Token(ID, source[i:j], line))
            i = j
            continue

        # Number (incl. hex, digit separators, floats, suffixes).
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] in "._'" or
                             (source[j] in "+-" and source[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token(NUM, source[i:j], line))
            i = j
            continue

        # Punctuation, longest match first.
        for p in _PUNCTUATORS:
            if source.startswith(p, i):
                tokens.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            i += 1  # Unknown byte: skip (keeps the lexer total).

    return LexedFile(tokens, comments)


def _at_line_start(tokens: List[Token], line: int) -> bool:
    """True when no token has been emitted yet on `line`."""
    return not tokens or tokens[-1].line < line


def lex_file(path: str) -> LexedFile:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return lex(f.read())
