// fixture-path: src/core/det_clock_rand.cc
// fixture-rules: determinism
//
// Raw clock / RNG primitives outside the sanctioned timing layer.

#include <chrono>
#include <cstdlib>
#include <random>

namespace txrep::core {

long StampNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // expect: det-nondet-clock
}

long WallNow() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // expect: det-nondet-clock
}

int Jitter() {
  return rand() % 10;  // expect: det-nondet-rand
}

unsigned Seed() {
  std::random_device rd;  // expect: det-nondet-rand
  return rd();
}

// `rand` as part of an ordinary identifier is not a diagnostic.
int rand_budget = 3;
int UseBudget() { return rand_budget; }

}  // namespace txrep::core
