// fixture-path: src/core/lock_guardedby.h
// fixture-rules: lock-annotations
//
// A class owning a check::Mutex must say, for every mutable data member,
// whether the mutex guards it (TXREP_GUARDED_BY), or why not (waiver).
// Const, static, atomic, and lock-primitive members are exempt.

#include <atomic>
#include <string>
#include <vector>

#include "check/annotations.h"
#include "check/mutex.h"

namespace txrep::core {

class Ledger {
 public:
  void Append(int v);

 private:
  check::Mutex mu_;
  check::CondVar cv_;
  std::vector<int> entries_ TXREP_GUARDED_BY(mu_);
  int* hot_slot_ TXREP_PT_GUARDED_BY(mu_);
  const std::string name_ = "ledger";
  static constexpr int kMaxEntries = 1024;
  std::atomic<int> pending_{0};
  // analyze: lock-free(set in ctor, immutable afterwards)
  int capacity_ = 0;
  int high_water_ = 0;  // expect: lock-guardedby-missing
  std::vector<int> overflow_;  // expect: lock-guardedby-missing
};

// No mutex member: nothing is required of the members.
class PlainBag {
 private:
  std::vector<int> items_;
  int count_ = 0;
};

}  // namespace txrep::core
