// fixture-path: src/core/status_discard.cc
// fixture-rules: status
//
// Void-casting a Status without a waiver, and binding a Status to a variable
// that is never read. `[[nodiscard]]` catches plain expression-statement
// drops at compile time; these are the two shapes it cannot see.

#include "common/status.h"

namespace txrep::core {

class Flusher {
 public:
  common::Status Flush();
  common::Status TryFlush();

  void Teardown() {
    (void)Flush();  // expect: status-discard
  }

  void TeardownWaived() {
    // analyze: discard(teardown path; nothing to return the error to)
    (void)Flush();
  }

  void TeardownCast() {
    static_cast<void>(TryFlush());  // expect: status-discard
  }

  int CheckedUse() {
    common::Status s = Flush();
    if (!s.ok()) return 1;
    return 0;
  }

  void BoundNeverRead() {
    common::Status s = Flush();  // expect: status-unused
  }
};

}  // namespace txrep::core
