// fixture-path: src/core/det_pointer_key.cc
// fixture-rules: determinism
//
// Ordered containers keyed by pointers iterate in address order, which
// differs across processes. Pointer *values* are fine; pointer *keys* are
// not.

#include <map>
#include <set>
#include <string>

namespace txrep::core {

class Txn;

class Scheduler {
 private:
  std::map<Txn*, int> priorities_;   // expect: det-pointer-key
  std::set<const Txn*> blocked_;     // expect: det-pointer-key
  std::map<int, Txn*> by_ticket_;    // pointer value, stable int key: fine
  std::map<std::string, int> by_name_;
};

}  // namespace txrep::core
