// fixture-path: src/core/det_unordered.cc
// fixture-rules: determinism
//
// Unordered-container iteration feeding replica-visible sinks on the apply
// path. Ordered containers and order-insensitive loop bodies stay silent.

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace txrep::core {

class Store {
 public:
  void Put(const std::string& k, const std::string& v);
};

class Rebuilder {
 public:
  // Range-for over an unordered_map with a store mutation in the body.
  void PublishAll(Store& store) {
    for (const auto& [key, value] : live_) {  // expect: det-unordered-iter
      store.Put(key, value);
    }
  }

  // Same shape over an ordered std::map: deterministic, no diagnostic.
  void PublishOrdered(Store& store) {
    for (const auto& [key, value] : ordered_) {
      store.Put(key, value);
    }
  }

  // Unordered iteration whose body only accumulates a count: the result is
  // order-insensitive, no sink call, no diagnostic.
  void CountBytes() {
    for (const auto& [key, value] : live_) {
      total_ += value.size();
    }
  }

  // Classic iterator loop over an unordered_set feeding push_back.
  void DumpKeys(std::vector<std::string>& out) {
    for (auto it = keys_.begin(); it != keys_.end(); ++it) {  // expect: det-unordered-iter
      out.push_back(*it);
    }
  }

  void TailOne(std::vector<std::string>& out);

 private:
  std::unordered_map<std::string, std::string> live_;
  std::map<std::string, std::string> ordered_;
  std::unordered_set<std::string> keys_;
  unsigned long total_ = 0;
};

// Braceless loop body, out-of-line definition: member type resolution must
// cross from the definition back to the class.
void Rebuilder::TailOne(std::vector<std::string>& out) {
  for (const auto& key : keys_) out.push_back(key);  // expect: det-unordered-iter
}

}  // namespace txrep::core
