// fixture-path: src/core/blocking.cc
// fixture-rules: blocking
//
// Blocking operations while a lock guard is live: file I/O, condition
// waits that do not release the mutex, pool drains, and replication fan-out.
// CondVar::Wait is exempt (it releases the mutex while parked); work after
// the guard's scope closes is exempt.

#include <cstdio>

#include "check/mutex.h"

namespace txrep::core {

class Pool {
 public:
  common::Status WaitIdle();
};

class Cluster {
 public:
  common::Status MultiWrite(int batch);
};

class Archiver {
 public:
  void Persist() {
    check::MutexLock lock(&mu_);
    std::FILE* f = std::fopen("/tmp/archive", "wb");  // expect: lock-blocking-io
    if (f != nullptr) std::fclose(f);  // expect: lock-blocking-io
  }

  void PersistOutside() {
    {
      check::MutexLock lock(&mu_);
      dirty_ = false;
    }
    std::FILE* f = std::fopen("/tmp/archive", "wb");
    if (f != nullptr) std::fclose(f);
  }

  void DrainUnderLock() {
    check::MutexLock lock(&mu_);
    cv_.Await(&mu_, [this] { return !dirty_; });  // expect: lock-blocking-wait
  }

  void DrainPoolUnderLock() {
    check::MutexLock lock(&mu_);
    (void)pool_.WaitIdle();  // expect: lock-blocking-wait
  }

  void CondVarWaitIsFine() {
    check::MutexLock lock(&mu_);
    while (dirty_) cv_.Wait(&mu_);
  }

  void FanOutUnderLock() {
    check::MutexLock lock(&mu_);
    (void)cluster_.MultiWrite(7);  // expect: lock-blocking-fanout
  }

  void SyscallUnderLock() {
    check::MutexLock lock(&mu_);
    (void)send(fd_, "x", 1, 0);  // expect: lock-blocking-socket
    (void)connect(fd_, nullptr, 0);  // expect: lock-blocking-socket
  }

  void SyscallOutsideLock() {
    int fd;
    {
      check::MutexLock lock(&mu_);
      fd = fd_;
    }
    (void)send(fd, "x", 1, 0);
  }

 private:
  check::Mutex mu_;
  check::CondVar cv_;
  bool dirty_ = false;
  int fd_ = -1;
  Pool pool_;
  Cluster cluster_;
};

}  // namespace txrep::core
