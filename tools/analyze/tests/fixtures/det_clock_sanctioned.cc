// fixture-path: src/obs/clock_ok.cc
// fixture-rules: determinism
//
// The observability layer is sanctioned for raw clocks: exporter timestamps
// are not replica-visible state. No diagnostics expected.

#include <chrono>

namespace txrep::obs {

long ExportStamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace txrep::obs
