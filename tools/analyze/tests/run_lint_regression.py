#!/usr/bin/env python3
"""Regression tests for scripts/lint.sh.

The lint script is eight grep rules; a refactor that silently breaks one of
the patterns would keep exiting 0 forever. These tests copy the *real*
scripts/lint.sh into a scratch repo, seed one known-bad file per rule, and
assert that each rule still fires (and that a clean tree still passes).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.realpath(os.path.join(TESTS_DIR, "..", "..", ".."))
LINT = os.path.join(REPO_ROOT, "scripts", "lint.sh")

# One seeded violation per lint rule, with the message fragment the rule
# prints when it fires.
BAD_FILES = {
    "src/core/bad_lock.cc": (
        "#include <mutex>\nstd::mutex raw_mu;\n",
        "raw std locking"),
    "src/core/bad_metric.cc": (
        'const char* kName = "txrep_bogus_total";\n',
        "metric name literals"),
    "src/core/bad_io.cc": (
        '#include <cstdio>\nvoid F() { std::fopen("/tmp/x", "rb"); }\n',
        "direct file I/O"),
    "src/core/txn_buffer.cc": (
        'void G(Node* node) { node->Put("k", "v"); }\n',
        "per-op Put/Delete on the apply path"),
    "src/core/bad_span.cc": (
        'const char* kSpan = "span.bogus";\n',
        "span name literals"),
    "src/mw/bad_socket.cc": (
        "#include <sys/socket.h>\n"
        "int F() { return socket(AF_INET, SOCK_STREAM, 0); }\n",
        "socket syscalls"),
    "src/qt/bad_version_peek.cc": (
        "uint64_t F(txrep::blink::OptLatch& l) { return l.RawVersionWord(); }\n",
        "raw version-word"),
    "src/workload/bad_random.cc": (
        "#include <random>\nstd::mt19937 gen{42};\n",
        "stdlib randomness"),
}

# The per-op rule greps an explicit file list; a clean tree still provides
# those files so the rule runs against real content.
APPLY_PATH_FILES = [
    "src/core/txn_buffer.cc", "src/core/serial_applier.cc",
    "src/core/ticket_applier.cc", "src/core/transaction_manager.cc",
    "src/core/batch_dispatcher.cc", "src/txrep/bootstrap.cc",
]

failures = []


def check(name: str, cond: bool, detail: str = "") -> None:
    print(f"  [{'ok' if cond else 'FAIL'}] {name}"
          + (f": {detail}" if not cond and detail else ""))
    if not cond:
        failures.append(name)


def make_tree() -> str:
    root = tempfile.mkdtemp(prefix="txrep-lint-regression-")
    os.makedirs(os.path.join(root, "scripts"))
    shutil.copyfile(LINT, os.path.join(root, "scripts", "lint.sh"))
    os.chmod(os.path.join(root, "scripts", "lint.sh"), 0o755)
    for rel in APPLY_PATH_FILES:
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write("// clean\n")
    return root


def run_lint(root: str):
    return subprocess.run([os.path.join(root, "scripts", "lint.sh")],
                          capture_output=True, text=True)


def main() -> int:
    # Clean scratch tree: lint passes.
    root = make_tree()
    try:
        proc = run_lint(root)
        check("clean tree passes", proc.returncode == 0,
              proc.stdout + proc.stderr)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    # Each seeded violation fires its rule — and only its rule.
    for rel, (content, fragment) in sorted(BAD_FILES.items()):
        root = make_tree()
        try:
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            proc = run_lint(root)
            check(f"{rel}: lint fails", proc.returncode != 0, proc.stdout)
            check(f"{rel}: mentions '{fragment}'",
                  fragment in proc.stdout, proc.stdout)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    if failures:
        print(f"FAILED: {len(failures)} case(s): {failures}")
        return 1
    print("all lint regression tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
