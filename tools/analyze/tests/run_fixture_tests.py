#!/usr/bin/env python3
"""Fixture tests for txrep-analyze.

Each fixture under fixtures/ is a C++ file with three comment directives:

  // fixture-path: src/core/foo.cc     where the file sits in the scratch tree
                                       (rules key on path prefixes)
  // fixture-rules: determinism        rule families to run (comma-separated)
  ... code ...                         `// expect: rule-id` on each line that
                                       must produce exactly that diagnostic

For every fixture the runner builds a scratch repo, copies the fixture to its
virtual path, runs the analyzer CLI (internal backend, no baseline), and
asserts the *exact* set of (line, rule-id) diagnostics — extra diagnostics
fail the test just like missing ones, and the process exit code must agree
(non-zero iff diagnostics were expected).

Baseline mechanics get their own cases at the bottom: a suppression hides a
diagnostic, an empty note is an error, and a stale entry is an error (the
ratchet is one-way).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
CLI = os.path.join(TESTS_DIR, "..", "txrep-analyze")
FIXTURES = os.path.join(TESTS_DIR, "fixtures")

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): (?P<rule>[a-z-]+): ")

failures = []


def check(name: str, cond: bool, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f": {detail}" if not cond and detail else ""))
    if not cond:
        failures.append(name)


def parse_fixture(path: str):
    virtual_path = None
    families = "all"
    expects = set()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = re.search(r"//\s*fixture-path:\s*(\S+)", line)
            if m:
                virtual_path = m.group(1)
            m = re.search(r"//\s*fixture-rules:\s*(\S+)", line)
            if m:
                families = m.group(1)
            for rule in re.findall(r"//\s*expect:\s*([a-z-]+)", line):
                expects.add((lineno, rule))
    if virtual_path is None:
        raise RuntimeError(f"{path}: missing // fixture-path: directive")
    return virtual_path, families, expects


def run_cli(repo_root: str, extra_args):
    proc = subprocess.run(
        [sys.executable, CLI, "--repo-root", repo_root,
         "--backend", "internal"] + extra_args,
        capture_output=True, text=True)
    diags = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.add((m.group("path"), int(m.group("line")), m.group("rule")))
    return proc, diags


def scratch_tree(fixture: str, virtual_path: str) -> str:
    root = tempfile.mkdtemp(prefix="txrep-analyze-fixture-")
    dst = os.path.join(root, virtual_path)
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    shutil.copyfile(fixture, dst)
    return root


def run_fixture(fixture: str) -> None:
    name = os.path.basename(fixture)
    virtual_path, families, expects = parse_fixture(fixture)
    root = scratch_tree(fixture, virtual_path)
    try:
        proc, diags = run_cli(root, ["--baseline", "none",
                                     "--rules", families,
                                     "--files", virtual_path])
        actual = {(line, rule) for path, line, rule in diags
                  if path == virtual_path}
        missing = expects - actual
        extra = actual - expects
        check(f"{name}: diagnostics", not missing and not extra,
              f"missing={sorted(missing)} extra={sorted(extra)}\n"
              f"--- stdout ---\n{proc.stdout}")
        want_rc = 1 if expects else 0
        check(f"{name}: exit code {want_rc}", proc.returncode == want_rc,
              f"got {proc.returncode}")
    finally:
        shutil.rmtree(root, ignore_errors=True)


def baseline_cases() -> None:
    fixture = os.path.join(FIXTURES, "det_unordered.cc")
    virtual_path, families, expects = parse_fixture(fixture)
    root = scratch_tree(fixture, virtual_path)
    try:
        # A justified suppression hides every diagnostic it covers; with all
        # three contexts suppressed the run is green.
        contexts = ["Rebuilder::PublishAll", "Rebuilder::DumpKeys",
                    "Rebuilder::TailOne"]
        baseline = {"suppressions": [
            {"rule": "det-unordered-iter", "file": virtual_path,
             "context": c, "note": "fixture: proven order-insensitive"}
            for c in contexts]}
        bl = os.path.join(root, "baseline.json")
        with open(bl, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        proc, diags = run_cli(root, ["--baseline", bl, "--rules", families,
                                     "--files", virtual_path])
        check("baseline: suppressions silence diagnostics",
              proc.returncode == 0 and not diags,
              f"rc={proc.returncode}\n{proc.stdout}")

        # An empty note is a baseline error even though the diagnostic is
        # matched: suppressions must say *why*.
        baseline["suppressions"][0]["note"] = ""
        with open(bl, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        proc, _ = run_cli(root, ["--baseline", bl, "--rules", families,
                                 "--files", virtual_path])
        check("baseline: empty note is an error", proc.returncode != 0,
              proc.stdout)

        # A stale entry (matches nothing) is an error: the ratchet only
        # tightens, so fixed findings must leave the baseline.
        baseline["suppressions"][0] = {
            "rule": "det-unordered-iter", "file": virtual_path,
            "context": "Rebuilder::NoSuchFunction", "note": "stale"}
        with open(bl, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        proc, _ = run_cli(root, ["--baseline", bl, "--rules", families,
                                 "--files", virtual_path])
        check("baseline: stale entry is an error", proc.returncode != 0,
              proc.stdout)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main() -> int:
    fixtures = sorted(
        os.path.join(FIXTURES, f) for f in os.listdir(FIXTURES)
        if f.endswith((".cc", ".h")))
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 2
    print(f"running {len(fixtures)} fixtures")
    for fixture in fixtures:
        run_fixture(fixture)
    print("baseline mechanics")
    baseline_cases()
    if failures:
        print(f"FAILED: {len(failures)} case(s): {failures}")
        return 1
    print("all fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
